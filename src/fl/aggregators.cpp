#include "fl/aggregators.h"

#include <algorithm>
#include <atomic>
#include <cfenv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/contracts.h"
#include "core/rounding.h"
#include "core/thread_pool.h"

// This TU computes under runtime-switched fenv rounding modes (the
// determinism contract sweeps all four) and pins its own mode inside the
// trim-count snap; it is compiled with -frounding-math (GCC ignores the
// pragma) so FP expressions are not folded or moved across fesetround.
#if defined(__clang__)
#pragma STDC FENV_ACCESS ON
#endif

namespace fedms::fl {

namespace {

std::atomic<core::ThreadPool*> g_aggregation_pool{nullptr};

void check_models(const std::vector<ModelVector>& models) {
  FEDMS_EXPECTS(!models.empty());
  const std::size_t d = models.front().size();
  FEDMS_EXPECTS(d > 0);
  for (const auto& m : models) FEDMS_EXPECTS(m.size() == d);
}

// NaN-aware comparison key: NaN sorts as +∞ so the trim removes it from
// the high side (±∞ already order correctly and land in the tails).
// −0.0 canonicalizes to +0.0: the two zeros compare equal, so which one a
// selection routine leaves in a tail vs the kept window is tie-break
// dependent — and x + (−0.0) vs x + (+0.0) round differently under
// FE_DOWNWARD (0.0 + (−0.0) = −0.0 there). After canonicalization every
// pair of equal-comparing floats is bit-identical, so tie resolution can
// never change a sum. (The explicit compare, not `v + 0.0f`, which is
// itself mode-dependent for v = −0.0.)
inline float sort_key(float v) {
  if (std::isnan(v)) return std::numeric_limits<float>::infinity();
  if (v == 0.0f) return 0.0f;
  return v;
}

// Bounded-insertion tails for the trimmed mean's small-trim fast path.
// Both keep a sorted ascending prefix of at most `cap` values.

// Keeps the `cap` smallest values seen (evicts the largest kept).
inline void push_small(float* tail, std::size_t& count, std::size_t cap,
                       float v) {
  if (count == cap) {
    if (v >= tail[count - 1]) return;
    --count;
  }
  std::size_t pos = count;
  for (; pos > 0 && tail[pos - 1] > v; --pos) tail[pos] = tail[pos - 1];
  tail[pos] = v;
  ++count;
}

// Keeps the `cap` largest values seen (evicts the smallest kept).
inline void push_large(float* tail, std::size_t& count, std::size_t cap,
                       float v) {
  if (count == cap) {
    if (v <= tail[0]) return;
    std::size_t pos = 0;
    for (; pos + 1 < cap && tail[pos + 1] < v; ++pos) tail[pos] = tail[pos + 1];
    tail[pos] = v;
    return;
  }
  std::size_t pos = count;
  for (; pos > 0 && tail[pos - 1] > v; --pos) tail[pos] = tail[pos - 1];
  tail[pos] = v;
  ++count;
}

// Coordinate block sized so the transposed block (kBlock x P floats)
// stays L1/L2-resident while each model row is streamed through exactly
// once per block. Sharded execution aligns shard boundaries to it.
constexpr std::size_t kBlock = 64;
// Largest trim the linear tail-tracking fast path handles; beyond it the
// bounded insertions stop beating two nth_element partitions.
constexpr std::size_t kMaxFastTrim = 16;

// Mean of coordinates [j0, j1) into out — the per-shard kernel.
void mean_range(const std::vector<ModelVector>& models, std::size_t j0,
                std::size_t j1, ModelVector& out) {
  const double inv = 1.0 / double(models.size());
  for (std::size_t j = j0; j < j1; ++j) {
    double acc = 0.0;
    for (const auto& m : models) acc += m[j];
    out[j] = static_cast<float>(acc * inv);
  }
}

// ---- canonical per-column trimmed-mean arithmetic ----
//
// The determinism contract (ARCHITECTURE.md) requires the streaming fast
// path, the selection fallback (trimmed_mean_selection), and the full-sort
// oracle (trimmed_mean_reference) to agree BITWISE, per rounding mode, for
// every input. That only holds if all three execute the same FP operations
// in the same order, so the arithmetic is pinned to one case analysis over
// the canonicalized column (sort_key applied — equal floats bit-identical,
// so tail selection ties cannot change any sum):
//
//   1. trim == 0:        out = float(total / kept), total = Σ double(v_i)
//                        in MODEL order.
//   2. trim in (0, kMaxFastTrim] and the column all-finite:
//                        out = float((total − tails) / kept) with total as
//                        above and tails = Σ_{t<trim} (low[t] + high[t]) in
//                        double, low/high the trim smallest/largest values
//                        each sorted ASCENDING.
//   3. otherwise (±∞/NaN in the column, or trim > kMaxFastTrim):
//                        out = float((Σ kept values ASCENDING) / kept)
//                        (total − tails is unusable here: ∞ − ∞ = NaN).
//
// Which case applies depends only on (trim, column contents) — never on
// thread count, shard boundary, or rounding mode — so every execution
// shape lands on identical bits.

// Cases 2/3 over a gathered, canonicalized column. `total` must be the
// model-order double sum of column[0..p); reorders column[]. Case 1 is
// inlined at the call sites (no selection needed).
float kept_window_mean(float* column, std::size_t p, std::size_t trim,
                       double total, bool finite) {
  const std::size_t kept = p - 2 * trim;
  std::nth_element(column, column + trim, column + p);
  std::nth_element(column + trim, column + (p - trim), column + p);
  if (finite && trim <= kMaxFastTrim) {
    std::sort(column, column + trim);
    std::sort(column + (p - trim), column + p);
    double tails = 0.0;
    for (std::size_t i = 0; i < trim; ++i)
      tails += double(column[i]) + double(column[p - trim + i]);
    return static_cast<float>((total - tails) / double(kept));
  }
  std::sort(column + trim, column + (p - trim));
  double acc = 0.0;
  for (std::size_t i = trim; i < p - trim; ++i) acc += column[i];
  return static_cast<float>(acc / double(kept));
}

// Trimmed mean of coordinates [j0, j1) into out — the per-shard kernel.
// All scratch is call-local, so shards never share mutable state and the
// per-coordinate arithmetic is identical to a serial full-range call.
void trimmed_mean_range(const std::vector<ModelVector>& models,
                        std::size_t trim, std::size_t j0, std::size_t j1,
                        ModelVector& out) {
  const std::size_t p = models.size();
  const std::size_t kept = p - 2 * trim;
  std::vector<float> scratch(p);

  // Gathers coordinate j into `scratch` and applies the canonical case
  // analysis above — the general path for any trim and any column.
  auto select_mean = [&](std::size_t j) {
    float* column = scratch.data();
    double total = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < p; ++i) {
      const float v = sort_key(models[i][j]);
      column[i] = v;
      finite &= bool(std::isfinite(v));
      total += v;
    }
    if (trim == 0) {
      out[j] = static_cast<float>(total / double(kept));
      return;
    }
    out[j] = kept_window_mean(column, p, trim, total, finite);
  };

  if (trim == 0 || trim > kMaxFastTrim) {
    for (std::size_t j = j0; j < j1; ++j) select_mean(j);
    return;
  }

  // Small-trim fast path, the benign steady state: stream the P x d model
  // matrix model-major in cache-sized coordinate blocks, maintaining per
  // coordinate a running total plus the trim smallest/largest values by
  // bounded insertion (expected O(p + trim log p) updates per coordinate
  // on random input). The combine below IS canonical case 2 verbatim —
  // model-order total, ascending tails (bounded insertion keeps both tails
  // sorted), total − tails — so it lands on the same bits as select_mean.
  // Columns carrying ±∞/NaN — the Byzantine case — are redone with the
  // selection path above (canonical case 3; ∞ − ∞ = NaN rules case 2
  // out). All per-block state (totals + both tails) stays L1-resident.
  std::vector<double> totals(kBlock);
  std::vector<float> low(kBlock * trim), high(kBlock * trim);
  std::vector<std::size_t> nlow(kBlock), nhigh(kBlock);
  std::vector<unsigned char> nonfinite(kBlock);
  for (std::size_t jb = j0; jb < j1; jb += kBlock) {
    const std::size_t width = std::min(kBlock, j1 - jb);
    std::fill(totals.begin(), totals.begin() + std::ptrdiff_t(width), 0.0);
    std::fill(nlow.begin(), nlow.begin() + std::ptrdiff_t(width), 0u);
    std::fill(nhigh.begin(), nhigh.begin() + std::ptrdiff_t(width), 0u);
    std::fill(nonfinite.begin(), nonfinite.begin() + std::ptrdiff_t(width),
              0);
    for (std::size_t i = 0; i < p; ++i) {
      const float* row = models[i].data() + jb;
      for (std::size_t jj = 0; jj < width; ++jj) {
        const float v = sort_key(row[jj]);
        nonfinite[jj] |= static_cast<unsigned char>(!std::isfinite(v));
        totals[jj] += v;
        push_small(low.data() + jj * trim, nlow[jj], trim, v);
        push_large(high.data() + jj * trim, nhigh[jj], trim, v);
      }
    }
    for (std::size_t jj = 0; jj < width; ++jj) {
      if (nonfinite[jj]) {
        select_mean(jb + jj);
        continue;
      }
      double tails = 0.0;
      for (std::size_t i = 0; i < trim; ++i)
        tails += double(low[jj * trim + i]) + double(high[jj * trim + i]);
      out[jb + jj] =
          static_cast<float>((totals[jj] - tails) / double(kept));
    }
  }
}

// Runs `range(j0, j1, out)` over [0, d) sharded across `pool`, shard
// boundaries aligned to kBlock (so the fast path's blocking is unchanged).
// Oversplits 4x per worker: the nonfinite-column fallback makes shard cost
// uneven under Byzantine input.
//
// Each shard re-establishes the CALLER's rounding mode before computing:
// pool workers inherit the fenv of the thread that created the pool
// ([cfenv]), so a pool built before a mode switch would otherwise compute
// shards under a stale mode and diverge from the serial path — the
// "incidentally bit-identical" hazard the determinism contract closes.
template <typename RangeFn>
ModelVector sharded_by_coordinate(std::size_t d, core::ThreadPool& pool,
                                  const RangeFn& range) {
  ModelVector out(d);
  const std::size_t blocks = (d + kBlock - 1) / kBlock;
  std::size_t shards =
      pool.worker_count() == 0 ? 1 : pool.worker_count() * 4;
  shards = std::min(shards, blocks);
  const std::size_t width =
      ((blocks + shards - 1) / shards) * kBlock;  // per-shard coordinates
  const int caller_mode = std::fegetround();
  pool.parallel_for(shards, [&](std::size_t s) {
    const core::ScopedRoundingMode mode(caller_mode);
    const std::size_t j0 = s * width;
    const std::size_t j1 = std::min(d, j0 + width);
    if (j0 < j1) range(j0, j1, out);
  });
  return out;
}

}  // namespace

void set_aggregation_pool(core::ThreadPool* pool) {
  g_aggregation_pool.store(pool, std::memory_order_release);
}

core::ThreadPool* aggregation_pool() {
  return g_aggregation_pool.load(std::memory_order_acquire);
}

std::size_t beta_trim_count(double beta, std::size_t count) {
  FEDMS_EXPECTS(beta >= 0.0 && beta < 0.5);
  // ⌊β·count⌋ with an epsilon floor. β typically arrives as a decimal
  // round-trip of B/P — "trmean:0.3" times P = 10 is 2.9999999999999996 in
  // doubles, and TrimmedMeanAggregator::name() truncates to six digits
  // (1/7 → 0.142857, ·7 = 0.999999) — so a bare static_cast would trim one
  // unit short of what the text means. 1e-4 covers both error sources for
  // any count ≤ 100 while staying far below the 1/count spacing of
  // intentional β choices.
  //
  // Pinned to round-to-nearest: under an ambient directed mode the β·count
  // product and the epsilon add each shift by an ulp, so a β sitting on
  // the snap boundary could trim one unit more or fewer depending on the
  // caller's FPU state — a robustness count must never be a function of
  // the rounding mode.
  const core::ScopedRoundingMode nearest(FE_TONEAREST);
  const std::size_t trim =
      static_cast<std::size_t>(beta * double(count) + 1e-4);
  return trim;
}

std::size_t client_trim_target(double beta, std::size_t servers,
                               std::size_t byzantine) {
  FEDMS_EXPECTS(beta >= 0.0 && beta < 0.5);
  // β and B are coupled (β = B/P) whenever the filter was configured from
  // the run topology; recognize that case across any double representation
  // the coupling survived and return the integer B itself. An ablation
  // sweeping β independently of B lands outside the 1e-3 window and keeps
  // its exact ⌊β·P⌋. Mode-pinned for the same reason as beta_trim_count:
  // the 1e-3 window test must not flip with the ambient rounding mode.
  bool coupled = false;
  {
    const core::ScopedRoundingMode nearest(FE_TONEAREST);
    coupled = std::abs(beta * double(servers) - double(byzantine)) < 1e-3;
  }
  if (coupled) return byzantine;
  return beta_trim_count(beta, servers);
}

std::size_t degraded_trim_count(std::size_t target, std::size_t received) {
  if (received == 0) return 0;
  // min(target, ⌊(P'−1)/2⌋): trimming ⌊(P'−1)/2⌋ per side always leaves a
  // survivor, and the min only engages once P' ≤ 2·target — up to that
  // point the full target count is removed, unlike ⌊β·P'⌋ which silently
  // under-trims below B as soon as P' < P.
  return std::min(target, (received - 1) / 2);
}

ModelVector mean_aggregate(const std::vector<ModelVector>& models) {
  check_models(models);
  if (core::ThreadPool* pool = aggregation_pool())
    return mean_aggregate(models, *pool);
  const std::size_t d = models.front().size();
  ModelVector out(d);
  mean_range(models, 0, d, out);
  return out;
}

ModelVector mean_aggregate(const std::vector<ModelVector>& models,
                           core::ThreadPool& pool) {
  check_models(models);
  return sharded_by_coordinate(
      models.front().size(), pool,
      [&](std::size_t j0, std::size_t j1, ModelVector& out) {
        mean_range(models, j0, j1, out);
      });
}

ModelVector trimmed_mean(const std::vector<ModelVector>& models,
                         double beta) {
  FEDMS_EXPECTS(beta >= 0.0 && beta < 0.5);
  return trimmed_mean(models, beta_trim_count(beta, models.size()));
}

ModelVector trimmed_mean(const std::vector<ModelVector>& models,
                         std::size_t trim) {
  check_models(models);
  FEDMS_EXPECTS(2 * trim < models.size());
  if (core::ThreadPool* pool = aggregation_pool())
    return trimmed_mean(models, trim, *pool);
  const std::size_t d = models.front().size();
  ModelVector out(d);
  trimmed_mean_range(models, trim, 0, d, out);
  return out;
}

ModelVector trimmed_mean(const std::vector<ModelVector>& models,
                         std::size_t trim, core::ThreadPool& pool) {
  check_models(models);
  FEDMS_EXPECTS(2 * trim < models.size());
  return sharded_by_coordinate(
      models.front().size(), pool,
      [&](std::size_t j0, std::size_t j1, ModelVector& out) {
        trimmed_mean_range(models, trim, j0, j1, out);
      });
}

ModelVector trimmed_mean_reference(const std::vector<ModelVector>& models,
                                   double beta) {
  FEDMS_EXPECTS(beta >= 0.0 && beta < 0.5);
  return trimmed_mean_reference(models,
                                beta_trim_count(beta, models.size()));
}

ModelVector trimmed_mean_reference(const std::vector<ModelVector>& models,
                                   std::size_t trim) {
  check_models(models);
  const std::size_t p = models.size();
  FEDMS_EXPECTS(2 * trim < p);
  const std::size_t d = models.front().size();
  const std::size_t kept = p - 2 * trim;

  // Gather + full sort per column, then the canonical case analysis
  // (total in model order BEFORE sorting; a fully sorted column is a valid
  // input to both selection cases — nth_element on sorted data is a
  // no-op, the tails/kept window are already ascending).
  ModelVector out(d);
  std::vector<float> column(p);
  for (std::size_t j = 0; j < d; ++j) {
    double total = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < p; ++i) {
      const float v = sort_key(models[i][j]);
      column[i] = v;
      finite &= bool(std::isfinite(v));
      total += v;
    }
    if (trim == 0) {
      out[j] = static_cast<float>(total / double(kept));
      continue;
    }
    std::sort(column.begin(), column.end());
    if (finite && trim <= kMaxFastTrim) {
      double tails = 0.0;
      for (std::size_t i = 0; i < trim; ++i)
        tails += double(column[i]) + double(column[p - trim + i]);
      out[j] = static_cast<float>((total - tails) / double(kept));
      continue;
    }
    double acc = 0.0;
    for (std::size_t i = trim; i < p - trim; ++i) acc += column[i];
    out[j] = static_cast<float>(acc / double(kept));
  }
  return out;
}

ModelVector trimmed_mean_selection(const std::vector<ModelVector>& models,
                                   std::size_t trim) {
  check_models(models);
  const std::size_t p = models.size();
  FEDMS_EXPECTS(2 * trim < p);
  const std::size_t d = models.front().size();
  const std::size_t kept = p - 2 * trim;

  ModelVector out(d);
  std::vector<float> column(p);
  for (std::size_t j = 0; j < d; ++j) {
    double total = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < p; ++i) {
      const float v = sort_key(models[i][j]);
      column[i] = v;
      finite &= bool(std::isfinite(v));
      total += v;
    }
    if (trim == 0) {
      out[j] = static_cast<float>(total / double(kept));
      continue;
    }
    out[j] = kept_window_mean(column.data(), p, trim, total, finite);
  }
  return out;
}

ModelVector coordinate_median(const std::vector<ModelVector>& models) {
  check_models(models);
  const std::size_t p = models.size();
  const std::size_t d = models.front().size();
  ModelVector out(d);
  std::vector<float> column(p);
  const std::size_t mid = (p - 1) / 2;  // lower median
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < p; ++i) column[i] = sort_key(models[i][j]);
    std::nth_element(column.begin(), column.begin() + std::ptrdiff_t(mid),
                     column.end());
    out[j] = column[mid];
  }
  return out;
}

namespace {

// Krum scores: for each model, the summed squared distance to its
// n − f − 2 nearest other models. Lower is more central.
std::vector<double> krum_scores(const std::vector<ModelVector>& models,
                                std::size_t byzantine_count) {
  const std::size_t n = models.size();
  FEDMS_EXPECTS(n > byzantine_count + 2);
  const std::size_t closest = n - byzantine_count - 2;
  const std::size_t d = models.front().size();

  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) {
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double delta = double(sort_key(models[a][j])) -
                             double(sort_key(models[b][j]));
        acc += delta * delta;
      }
      // ±inf inputs produce inf or NaN distances; clamp to a huge finite
      // value so the sorts below keep a strict weak ordering.
      if (!std::isfinite(acc)) acc = std::numeric_limits<double>::max();
      dist[a][b] = dist[b][a] = acc;
    }

  std::vector<double> scores(n);
  std::vector<double> row;
  for (std::size_t a = 0; a < n; ++a) {
    row.clear();
    for (std::size_t b = 0; b < n; ++b)
      if (b != a) row.push_back(dist[a][b]);
    std::partial_sort(row.begin(), row.begin() + std::ptrdiff_t(closest),
                      row.end());
    double score = 0.0;
    for (std::size_t i = 0; i < closest; ++i) score += row[i];
    // Non-finite scores (a model containing ±inf/NaN yields inf or NaN
    // distances) must never win the argmin — NaN would poison the
    // comparison order — so pin them to +infinity.
    scores[a] = std::isfinite(score)
                    ? score
                    : std::numeric_limits<double>::infinity();
  }
  return scores;
}

}  // namespace

ModelVector krum(const std::vector<ModelVector>& models,
                 std::size_t byzantine_count) {
  check_models(models);
  const std::vector<double> scores = krum_scores(models, byzantine_count);
  const std::size_t best = static_cast<std::size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
  return models[best];
}

ModelVector multi_krum(const std::vector<ModelVector>& models,
                       std::size_t byzantine_count, std::size_t select) {
  check_models(models);
  FEDMS_EXPECTS(select > 0 && select <= models.size());
  const std::vector<double> scores = krum_scores(models, byzantine_count);
  std::vector<std::size_t> order(models.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + std::ptrdiff_t(select),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return scores[a] < scores[b];
                    });
  std::vector<ModelVector> selected;
  selected.reserve(select);
  for (std::size_t i = 0; i < select; ++i)
    selected.push_back(models[order[i]]);
  return mean_aggregate(selected);
}

ModelVector bulyan(const std::vector<ModelVector>& models,
                   std::size_t byzantine_count) {
  check_models(models);
  const std::size_t n = models.size();
  const std::size_t f = byzantine_count;
  FEDMS_EXPECTS(n >= 4 * f + 3);
  // Selection phase: iteratively pick the Krum winner from the remainder
  // until n − 2f candidates are chosen.
  std::vector<ModelVector> pool = models;
  std::vector<ModelVector> selected;
  const std::size_t select_count = n - 2 * f;
  while (selected.size() < select_count) {
    if (pool.size() <= 2) {
      // Too few left for a meaningful Krum score; take the rest as-is (the
      // trimming phase still removes f extremes per coordinate).
      for (auto& m : pool) {
        if (selected.size() == select_count) break;
        selected.push_back(std::move(m));
      }
      break;
    }
    // Krum needs pool > f_local + 2; clamp f for the shrinking pool.
    const std::size_t f_local = std::min(f, pool.size() - 3);
    const std::vector<double> scores = krum_scores(pool, f_local);
    // Exact score ties are GENERIC here, not an edge case: once the pool
    // shrinks to f_local + 3 the score is the distance to the single
    // nearest neighbour, so any mutual-nearest pair ties bit-for-bit. A
    // positional tie-break would make the selected set depend on input
    // order; breaking ties by model content keeps bulyan permutation
    // invariant (canonicalized coordinates so ±0.0/NaN compare stably).
    std::size_t best = 0;
    for (std::size_t i = 1; i < pool.size(); ++i) {
      if (scores[i] > scores[best]) continue;
      if (scores[i] < scores[best] ||
          std::lexicographical_compare(
              pool[i].begin(), pool[i].end(), pool[best].begin(),
              pool[best].end(), [](float a, float b) {
                return sort_key(a) < sort_key(b);
              }))
        best = i;
    }
    selected.push_back(pool[best]);
    pool.erase(pool.begin() + std::ptrdiff_t(best));
  }
  FEDMS_ASSERT(!selected.empty());
  // Aggregation phase: coordinate-wise trimmed mean over the selection,
  // trimming f per side (requires select_count > 2f, i.e. n > 4f ✓).
  return trimmed_mean(selected, f);
}

ModelVector geometric_median(const std::vector<ModelVector>& models,
                             std::size_t max_iterations, double tolerance) {
  check_models(models);
  const std::size_t n = models.size();
  const std::size_t d = models.front().size();
  constexpr double kSmoothing = 1e-8;  // Weiszfeld smoothing term

  // Models containing any non-finite coordinate cannot contribute to a
  // finite median; Weiszfeld runs over the finite subset (a geometric
  // median tolerates a minority of outliers by design — a non-finite value
  // is just the limit case). All-poisoned input degenerates to zeros.
  std::vector<const ModelVector*> finite_models;
  finite_models.reserve(n);
  for (const auto& m : models) {
    bool finite = true;
    for (const float v : m) finite &= bool(std::isfinite(v));
    if (finite) finite_models.push_back(&m);
  }
  if (finite_models.empty()) return ModelVector(d, 0.0f);

  // Start from the coordinate mean of the finite subset.
  std::vector<double> estimate(d, 0.0);
  for (const auto* m : finite_models)
    for (std::size_t j = 0; j < d; ++j) estimate[j] += (*m)[j];
  for (auto& v : estimate) v /= double(finite_models.size());

  std::vector<double> next(d);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double weight_sum = 0.0;
    for (const auto* m : finite_models) {
      double dist_sq = kSmoothing;
      for (std::size_t j = 0; j < d; ++j) {
        const double delta = estimate[j] - (*m)[j];
        dist_sq += delta * delta;
      }
      const double w = 1.0 / std::sqrt(dist_sq);
      weight_sum += w;
      for (std::size_t j = 0; j < d; ++j) next[j] += w * (*m)[j];
    }
    double shift_sq = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      next[j] /= weight_sum;
      const double delta = next[j] - estimate[j];
      shift_sq += delta * delta;
    }
    estimate.swap(next);
    if (shift_sq < tolerance * tolerance) break;
  }

  ModelVector out(d);
  for (std::size_t j = 0; j < d; ++j) out[j] = static_cast<float>(estimate[j]);
  return out;
}

ModelVector MeanAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return mean_aggregate(models);
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double beta) : beta_(beta) {
  FEDMS_EXPECTS(beta >= 0.0 && beta < 0.5);
}

ModelVector TrimmedMeanAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return trimmed_mean(models, beta_);
}

std::string TrimmedMeanAggregator::name() const {
  return "trmean:" + std::to_string(beta_);
}

ModelVector MedianAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return coordinate_median(models);
}

KrumAggregator::KrumAggregator(std::size_t byzantine_count)
    : byzantine_count_(byzantine_count) {}

ModelVector KrumAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return krum(models, byzantine_count_);
}

ModelVector GeometricMedianAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return geometric_median(models);
}

MultiKrumAggregator::MultiKrumAggregator(std::size_t byzantine_count,
                                         std::size_t select)
    : byzantine_count_(byzantine_count), select_(select) {
  FEDMS_EXPECTS(select > 0);
}

ModelVector MultiKrumAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return multi_krum(models, byzantine_count_,
                    std::min(select_, models.size()));
}

BulyanAggregator::BulyanAggregator(std::size_t byzantine_count)
    : byzantine_count_(byzantine_count) {}

ModelVector BulyanAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return bulyan(models, byzantine_count_);
}

namespace {

// Squared L2 distance of every model to the coordinate median, in double;
// a model with any non-finite coordinate (or an overflowing sum) scores
// +∞. The shared disagreement metric behind the adaptive estimator and
// FedGreed's dataset-free proxy score. Caller pins the rounding mode.
std::vector<double> median_distance_scores(
    const std::vector<ModelVector>& models) {
  const ModelVector center = coordinate_median(models);
  const std::size_t d = center.size();
  std::vector<double> scores(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = double(models[i][j]) - double(center[j]);
      acc += delta * delta;
    }
    scores[i] =
        std::isfinite(acc) ? acc : std::numeric_limits<double>::infinity();
  }
  return scores;
}

}  // namespace

AdaptiveTrimAggregator::AdaptiveTrimAggregator(std::size_t initial_estimate)
    : initial_estimate_(initial_estimate) {}

std::size_t AdaptiveTrimAggregator::estimate_trim(
    const std::vector<ModelVector>& models) const {
  check_models(models);
  const std::size_t p = models.size();
  // The trimmed mean needs a survivor: B̂ can never exceed ⌊(P−1)/2⌋ —
  // the over-estimation side of the Chen/Zhang/Huang trade-off is capped
  // by feasibility, not by knowledge of B.
  const std::size_t cap = (p - 1) / 2;
  if (cap == 0) return 0;

  // Pinned to nearest for the same reason as beta_trim_count: the outlier
  // threshold comparison is a robustness-count derivation and must not
  // move with the ambient fenv.
  const core::ScopedRoundingMode nearest(FE_TONEAREST);
  const std::vector<double> scores = median_distance_scores(models);
  std::vector<double> sorted = scores;
  const std::size_t mid = (p - 1) / 2;  // lower median, honest-anchored
  std::nth_element(sorted.begin(), sorted.begin() + std::ptrdiff_t(mid),
                   sorted.end());
  const double median_score = sorted[mid];
  const double threshold =
      std::isfinite(median_score)
          ? 4.0 * median_score + 1e-9
          : std::numeric_limits<double>::infinity();
  std::size_t outliers = 0;
  for (const double score : scores)
    if (!std::isfinite(score) || score > threshold) ++outliers;
  return std::min(std::max(outliers, initial_estimate_), cap);
}

ModelVector AdaptiveTrimAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  return trimmed_mean(models, estimate_trim(models));
}

std::string AdaptiveTrimAggregator::name() const {
  return "adaptive:" + std::to_string(initial_estimate_);
}

FedGreedAggregator::FedGreedAggregator(std::size_t select)
    : select_(select) {
  FEDMS_EXPECTS(select > 0);
}

ModelVector FedGreedAggregator::aggregate(
    const std::vector<ModelVector>& models) const {
  check_models(models);
  const std::size_t n = models.size();
  std::vector<double> scores(n);
  {
    // The selected SET must be identical under every fenv mode (it decides
    // which bits reach the mean), so scoring — including the root-batch
    // forward pass — runs pinned to nearest.
    const core::ScopedRoundingMode nearest(FE_TONEAREST);
    if (root_score_) {
      for (std::size_t i = 0; i < n; ++i) {
        const double score = root_score_(models[i]);
        scores[i] = std::isfinite(score)
                        ? score
                        : std::numeric_limits<double>::infinity();
      }
    } else {
      scores = median_distance_scores(models);
    }
  }
  const std::size_t keep = std::min(select_, n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // Ties (identical candidates, equal losses) break by candidate index so
  // the selection is a pure function of the scores.
  std::partial_sort(order.begin(), order.begin() + std::ptrdiff_t(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b])
                        return scores[a] < scores[b];
                      return a < b;
                    });
  std::vector<ModelVector> selected;
  selected.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i)
    selected.push_back(models[order[i]]);
  return mean_aggregate(selected);
}

std::string FedGreedAggregator::name() const {
  return "fedgreed:" + std::to_string(select_);
}

bool install_fedgreed_root_score(Aggregator& filter,
                                 FedGreedAggregator::RootScoreFn score) {
  auto* fedgreed = dynamic_cast<FedGreedAggregator*>(&filter);
  if (fedgreed == nullptr) return false;
  fedgreed->set_root_score(std::move(score));
  return true;
}

ModelVector aggregate_or_mean(const Aggregator& rule,
                              const std::vector<ModelVector>& models) {
  FEDMS_EXPECTS(!models.empty());
  if (models.size() < rule.min_models()) return mean_aggregate(models);
  return rule.aggregate(models);
}

ModelVector apply_client_filter(const Aggregator& rule,
                                const std::vector<ModelVector>& models,
                                std::size_t servers, std::size_t byzantine) {
  return apply_client_filter(rule, models, servers, byzantine, nullptr);
}

ModelVector apply_client_filter(const Aggregator& rule,
                                const std::vector<ModelVector>& models,
                                std::size_t servers, std::size_t byzantine,
                                std::size_t* trim_used) {
  FEDMS_EXPECTS(!models.empty());
  if (trim_used != nullptr) *trim_used = kNoTrim;
  if (const auto* adaptive =
          dynamic_cast<const AdaptiveTrimAggregator*>(&rule)) {
    // B is unknown to the adaptive rule by construction: the configured
    // (servers, byzantine) pair is deliberately ignored and the per-call
    // estimate over the candidates that actually arrived is the trim.
    const std::size_t trim = adaptive->estimate_trim(models);
    if (trim_used != nullptr) *trim_used = trim;
    return trimmed_mean(models, trim);
  }
  if (const auto* trmean =
          dynamic_cast<const TrimmedMeanAggregator*>(&rule)) {
    const std::size_t target =
        client_trim_target(trmean->beta(), servers, byzantine);
    const std::size_t trim = degraded_trim_count(target, models.size());
    if (trim_used != nullptr) *trim_used = trim;
    return trimmed_mean(models, trim);
  }
  return aggregate_or_mean(rule, models);
}

namespace {

// Full-consumption numeric parses: std::stod/stoul accept trailing junk
// ("0.2x" -> 0.2), which would let a typo silently change the rule.
bool parse_full_double(const std::string& text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_full_count(const std::string& text, std::size_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

std::string check_aggregator_spec(const std::string& spec) {
  static const char* kKnown =
      "expected mean | trmean:<beta> | median | krum:<f> | "
      "multikrum:<f>:<m> | bulyan:<f> | geomedian | adaptive[:<init>] | "
      "fedgreed:<k>";
  if (spec == "mean" || spec == "median" || spec == "geomedian" ||
      spec == "adaptive")
    return "";
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (head == "trmean") {
    double beta = 0.0;
    if (!parse_full_double(arg, &beta))
      return "trmean needs a numeric beta, got \"" + spec + "\" (" +
             kKnown + ")";
    if (!(beta >= 0.0 && beta < 0.5))
      return "trmean beta must be in [0, 0.5), got " + arg +
             " (more than half the values cannot be trimmed per side)";
    return "";
  }
  if (head == "krum" || head == "bulyan") {
    std::size_t f = 0;
    if (!parse_full_count(arg, &f))
      return head + " needs an integer Byzantine count, got \"" + spec +
             "\" (" + kKnown + ")";
    return "";
  }
  if (head == "multikrum") {
    const auto second = arg.find(':');
    std::size_t f = 0, m = 0;
    if (second == std::string::npos ||
        !parse_full_count(arg.substr(0, second), &f) ||
        !parse_full_count(arg.substr(second + 1), &m) || m == 0)
      return "multikrum needs \"multikrum:<f>:<m>\" with integer f and "
             "m >= 1, got \"" + spec + "\"";
    return "";
  }
  if (head == "adaptive") {
    std::size_t init = 0;
    if (!parse_full_count(arg, &init))
      return "adaptive needs an integer initial estimate, got \"" + spec +
             "\" (" + kKnown + ")";
    return "";
  }
  if (head == "fedgreed") {
    std::size_t k = 0;
    if (!parse_full_count(arg, &k) || k == 0)
      return "fedgreed needs an integer server count k >= 1, got \"" +
             spec + "\" (" + kKnown + ")";
    return "";
  }
  return "unknown aggregator \"" + spec + "\" (" + kKnown + ")";
}

std::optional<double> trmean_beta(const std::string& spec) {
  if (spec.rfind("trmean:", 0) != 0) return std::nullopt;
  double beta = 0.0;
  if (!parse_full_double(spec.substr(7), &beta)) return std::nullopt;
  return beta;
}

std::size_t first_nonfinite_coordinate(const ModelVector& model) {
  for (std::size_t j = 0; j < model.size(); ++j)
    if (!std::isfinite(model[j])) return j;
  return model.size();
}

bool within_coordinate_envelope(const ModelVector& model,
                                const std::vector<ModelVector>& reference,
                                double tolerance,
                                std::size_t* bad_coordinate) {
  FEDMS_EXPECTS(!reference.empty());
  for (const ModelVector& r : reference)
    FEDMS_EXPECTS(r.size() == model.size());
  for (std::size_t j = 0; j < model.size(); ++j) {
    const double value = model[j];
    if (!std::isfinite(value)) {
      if (bad_coordinate != nullptr) *bad_coordinate = j;
      return false;
    }
    double lo = reference[0][j], hi = reference[0][j];
    for (const ModelVector& r : reference) {
      lo = std::min(lo, double(r[j]));
      hi = std::max(hi, double(r[j]));
    }
    const double scale =
        std::max(1.0, std::max(std::fabs(lo), std::fabs(hi)));
    if (value < lo - tolerance * scale || value > hi + tolerance * scale) {
      if (bad_coordinate != nullptr) *bad_coordinate = j;
      return false;
    }
  }
  return true;
}

AggregatorPtr make_aggregator(const std::string& spec) {
  if (spec == "mean") return std::make_unique<MeanAggregator>();
  if (spec == "median") return std::make_unique<MedianAggregator>();
  if (spec == "geomedian")
    return std::make_unique<GeometricMedianAggregator>();
  if (spec == "adaptive") return std::make_unique<AdaptiveTrimAggregator>();
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (head == "trmean") {
    FEDMS_EXPECTS(!arg.empty());
    return std::make_unique<TrimmedMeanAggregator>(std::stod(arg));
  }
  if (head == "krum") {
    FEDMS_EXPECTS(!arg.empty());
    return std::make_unique<KrumAggregator>(std::stoul(arg));
  }
  if (head == "bulyan") {
    FEDMS_EXPECTS(!arg.empty());
    return std::make_unique<BulyanAggregator>(std::stoul(arg));
  }
  if (head == "multikrum") {
    const auto second_colon = arg.find(':');
    FEDMS_EXPECTS(second_colon != std::string::npos);
    return std::make_unique<MultiKrumAggregator>(
        std::stoul(arg.substr(0, second_colon)),
        std::stoul(arg.substr(second_colon + 1)));
  }
  if (head == "adaptive") {
    FEDMS_EXPECTS(!arg.empty());
    return std::make_unique<AdaptiveTrimAggregator>(std::stoul(arg));
  }
  if (head == "fedgreed") {
    FEDMS_EXPECTS(!arg.empty());
    return std::make_unique<FedGreedAggregator>(std::stoul(arg));
  }
  FEDMS_EXPECTS(!"unknown aggregator spec");
  return nullptr;
}

std::vector<std::string> default_defense_zoo(std::size_t servers,
                                             std::size_t byzantine) {
  FEDMS_EXPECTS(servers >= 1 && 2 * byzantine <= servers);
  // β = B/P is an FP division whose last bit moves with the ambient
  // rounding mode; render the spec text under a pinned mode so the zoo is
  // byte-identical for any caller fenv (mode-proof text, as everywhere).
  char beta[32];
  {
    const core::ScopedRoundingMode nearest(FE_TONEAREST);
    std::snprintf(beta, sizeof beta, "%.6g",
                  double(byzantine) / double(servers));
  }
  const std::size_t keep =
      servers > 2 * byzantine ? servers - 2 * byzantine : 1;
  std::vector<std::string> zoo;
  zoo.push_back("mean");
  zoo.push_back(std::string("trmean:") + beta);
  zoo.push_back("median");
  zoo.push_back("krum:" + std::to_string(byzantine));
  zoo.push_back("multikrum:" + std::to_string(byzantine) + ":" +
                std::to_string(keep));
  if (servers >= 4 * byzantine + 3)
    zoo.push_back("bulyan:" + std::to_string(byzantine));
  zoo.push_back("geomedian");
  zoo.push_back("adaptive");
  zoo.push_back("fedgreed:" + std::to_string(keep));
  return zoo;
}

}  // namespace fedms::fl
