#include "fl/experiment.h"

#include <algorithm>

#include "core/contracts.h"
#include "fl/aggregators.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "nn/params.h"

namespace fedms::fl {

namespace {

std::unique_ptr<nn::Sequential> build_model(const WorkloadConfig& workload,
                                            std::uint64_t model_seed) {
  // A fresh Rng from the same seed gives every client bit-identical initial
  // weights — the common w₀ of Algorithm 1.
  core::Rng rng(model_seed);
  if (workload.model == "mlp")
    return nn::make_mlp(workload.feature_dimension, workload.mlp_hidden,
                        workload.classes, rng);
  if (workload.model == "logistic")
    return nn::make_logistic(workload.feature_dimension, workload.classes,
                             rng);
  if (workload.model == "mobilenet") {
    nn::MobileNetV2Config config;
    config.in_channels = 3;
    config.image_size = workload.image_size;
    config.classes = workload.classes;
    return nn::make_mobilenet_v2_tiny(config, rng);
  }
  if (workload.model == "lenet")
    return nn::make_lenet_tiny(3, workload.image_size, workload.classes,
                               rng);
  FEDMS_EXPECTS(!"unknown model name (expected mlp|logistic|mobilenet|lenet)");
  return nullptr;
}

}  // namespace

Workload make_workload(const WorkloadConfig& workload,
                       const FedMsConfig& fed) {
  const core::SeedSequence seeds(fed.seed);
  core::Rng data_rng = seeds.make_rng("dataset");

  data::Dataset full;
  if (workload.model == "mobilenet" || workload.model == "lenet") {
    data::SyntheticImagesConfig config;
    config.samples = workload.samples;
    config.image_size = workload.image_size;
    config.num_classes = workload.classes;
    config.class_separation = workload.class_separation;
    full = data::make_synthetic_images(config, data_rng);
  } else {
    data::GaussianClassesConfig config;
    config.samples = workload.samples;
    config.dimension = workload.feature_dimension;
    config.num_classes = workload.classes;
    config.class_separation = workload.class_separation;
    full = data::make_gaussian_classes(config, data_rng);
  }

  core::Rng split_rng = seeds.make_rng("split");
  auto split = data::split_train_test(full, workload.test_fraction,
                                      split_rng);

  core::Rng partition_rng = seeds.make_rng("partition");
  Workload result;
  result.partition = data::dirichlet_partition(
      split.train, fed.clients, workload.dirichlet_alpha, partition_rng,
      /*min_samples_per_client=*/workload.batch_size / 4 + 1);
  result.train = std::move(split.train);
  result.test = std::move(split.test);
  return result;
}

std::vector<LearnerPtr> make_nn_learners(const Workload& data,
                                         const WorkloadConfig& workload,
                                         const FedMsConfig& fed) {
  FEDMS_EXPECTS(data.partition.size() == fed.clients);
  const core::SeedSequence seeds(fed.seed);
  const std::uint64_t model_seed = seeds.derive("model-init");

  NnLearnerOptions options;
  options.batch_size = workload.batch_size;
  options.learning_rate = workload.learning_rate;
  options.lr_schedule = workload.lr_schedule;
  options.momentum = workload.momentum;
  options.weight_decay = workload.weight_decay;
  options.eval_sample_cap = workload.eval_sample_cap;

  data::PartitionIndices test_shards;
  if (workload.local_test_shards) {
    core::Rng shard_rng = seeds.make_rng("test-shards");
    test_shards = data::iid_partition(data.test, fed.clients, shard_rng);
  }

  std::vector<LearnerPtr> learners;
  learners.reserve(fed.clients);
  for (std::size_t k = 0; k < fed.clients; ++k) {
    learners.push_back(std::make_unique<NnLearner>(
        data.train, data.partition[k], data.test,
        build_model(workload, model_seed), options,
        seeds.make_rng("client-sampler", k),
        workload.local_test_shards ? test_shards[k]
                                   : std::vector<std::size_t>{}));
  }
  return learners;
}

LearnerPtr make_nn_learner(const Workload& data,
                           const WorkloadConfig& workload,
                           const FedMsConfig& fed, std::size_t k) {
  FEDMS_EXPECTS(data.partition.size() == fed.clients);
  FEDMS_EXPECTS(k < fed.clients);
  const core::SeedSequence seeds(fed.seed);
  const std::uint64_t model_seed = seeds.derive("model-init");

  NnLearnerOptions options;
  options.batch_size = workload.batch_size;
  options.learning_rate = workload.learning_rate;
  options.lr_schedule = workload.lr_schedule;
  options.momentum = workload.momentum;
  options.weight_decay = workload.weight_decay;
  options.eval_sample_cap = workload.eval_sample_cap;

  std::vector<std::size_t> test_pool;
  if (workload.local_test_shards) {
    core::Rng shard_rng = seeds.make_rng("test-shards");
    test_pool = data::iid_partition(data.test, fed.clients, shard_rng)[k];
  }

  return std::make_unique<NnLearner>(
      data.train, data.partition[k], data.test,
      build_model(workload, model_seed), options,
      seeds.make_rng("client-sampler", k), std::move(test_pool));
}

std::vector<float> initial_model(const WorkloadConfig& workload,
                                 const FedMsConfig& fed) {
  const core::SeedSequence seeds(fed.seed);
  auto model = build_model(workload, seeds.derive("model-init"));
  return nn::flatten_state(*model);
}

bool install_fedgreed_scorer(Aggregator& filter, const Workload& data,
                             const WorkloadConfig& workload,
                             const FedMsConfig& fed) {
  if (dynamic_cast<FedGreedAggregator*>(&filter) == nullptr) return false;
  FEDMS_EXPECTS(data.test.size() > 0);
  const core::SeedSequence seeds(fed.seed);

  // A fixed uniform draw from the held-out test split: every process that
  // builds this filter (simulator, each client node, scenario cell)
  // derives the identical batch from (seed, test size) alone.
  core::Rng rng = seeds.make_rng("fedgreed-root");
  std::vector<std::size_t> root(data.test.size());
  for (std::size_t i = 0; i < root.size(); ++i) root[i] = i;
  rng.shuffle(root);
  root.resize(std::min(fed.fedgreed_root_samples, data.test.size()));
  std::sort(root.begin(), root.end());

  NnLearnerOptions options;
  options.batch_size = workload.batch_size;
  options.eval_sample_cap = 0;  // score on the whole root batch
  // The scorer never trains: the {0} sample pool and its RNG stream are
  // ctor requirements only. Candidate state is fully overwritten per call
  // (trainable parameters AND batch-norm stats), so scores are a pure
  // function of the candidate bits.
  auto scorer = std::make_shared<NnLearner>(
      data.train, std::vector<std::size_t>{0}, data.test,
      build_model(workload, seeds.derive("model-init")), options,
      seeds.make_rng("fedgreed-scorer"), std::move(root));
  return install_fedgreed_root_score(
      filter, [scorer](const std::vector<float>& candidate) {
        scorer->set_parameters(candidate);
        return scorer->evaluate().loss;
      });
}

Experiment make_experiment(const WorkloadConfig& workload,
                           const FedMsConfig& fed) {
  Experiment experiment;
  experiment.data = std::make_unique<Workload>(make_workload(workload, fed));
  auto learners = make_nn_learners(*experiment.data, workload, fed);
  experiment.run =
      std::make_unique<FedMsRun>(fed, std::move(learners));
  install_fedgreed_scorer(experiment.run->client_filter(), *experiment.data,
                          workload, fed);
  return experiment;
}

RunResult run_experiment(const WorkloadConfig& workload,
                         const FedMsConfig& fed) {
  Experiment experiment = make_experiment(workload, fed);
  return experiment.run->run();
}

CentralizedResult run_centralized_baseline(const WorkloadConfig& workload,
                                           const FedMsConfig& fed,
                                           std::size_t epochs) {
  FEDMS_EXPECTS(epochs > 0);
  const Workload data = make_workload(workload, fed);
  // One learner owning the pooled training data.
  std::vector<std::size_t> all(data.train.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  NnLearnerOptions options;
  options.batch_size = workload.batch_size;
  options.learning_rate = workload.learning_rate;
  options.lr_schedule = workload.lr_schedule;
  options.momentum = workload.momentum;
  options.weight_decay = workload.weight_decay;
  options.eval_sample_cap = workload.eval_sample_cap;
  const core::SeedSequence seeds(fed.seed);
  NnLearner learner(data.train, all, data.test,
                    build_model(workload, seeds.derive("model-init")),
                    options, seeds.make_rng("centralized-sampler"));

  // One "epoch" = enough mini-batch steps to see the dataset once.
  const std::size_t steps_per_epoch =
      std::max<std::size_t>(1, data.train.size() / workload.batch_size);
  CentralizedResult result;
  result.epoch_accuracy.reserve(epochs);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    learner.local_training(steps_per_epoch);
    result.epoch_accuracy.push_back(learner.evaluate().accuracy);
  }
  result.final_accuracy = result.epoch_accuracy.back();
  return result;
}

}  // namespace fedms::fl
