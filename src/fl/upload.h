// Model-upload strategies for the aggregation stage.
//
// The paper's sparse uploading strategy has each client pick ONE PS
// uniformly at random per round, giving total upload cost K — identical to
// single-PS FedAvg — at the price of each PS seeing only a random subset
// N_i of clients (E|N_i| = K/P). The alternatives exist for the
// communication/accuracy ablation: upload-to-all restores full aggregation
// at P× the cost; m-of-P interpolates.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"

namespace fedms::fl {

class UploadStrategy {
 public:
  virtual ~UploadStrategy() = default;

  // PS indices (distinct, within [0, server_count)) that `client` uploads
  // its model to in this round. `rng` is the client's private stream.
  virtual std::vector<std::size_t> select_servers(std::size_t client,
                                                  std::uint64_t round,
                                                  std::size_t server_count,
                                                  core::Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

using UploadStrategyPtr = std::unique_ptr<UploadStrategy>;

// The paper's strategy: one uniformly random PS.
class SparseUpload final : public UploadStrategy {
 public:
  std::vector<std::size_t> select_servers(std::size_t client,
                                          std::uint64_t round,
                                          std::size_t server_count,
                                          core::Rng& rng) const override;
  std::string name() const override { return "sparse"; }
};

// Upload to every PS (cost K×P, the trivial solution of §IV-A).
class FullUpload final : public UploadStrategy {
 public:
  std::vector<std::size_t> select_servers(std::size_t client,
                                          std::uint64_t round,
                                          std::size_t server_count,
                                          core::Rng& rng) const override;
  std::string name() const override { return "full"; }
};

// Deterministic rotation: client k uploads to PS (k + round) mod P.
// Perfectly balanced |N_i| every round (no empty-PS rounds), but the
// assignment is predictable, which an adaptive adversary could exploit —
// and Lemma 3's unbiasedness argument needs the *uniform* randomness of
// SparseUpload. Kept as an engineering ablation.
class RoundRobinUpload final : public UploadStrategy {
 public:
  std::vector<std::size_t> select_servers(std::size_t client,
                                          std::uint64_t round,
                                          std::size_t server_count,
                                          core::Rng& rng) const override;
  std::string name() const override { return "roundrobin"; }
};

// Upload to m distinct uniformly random PSs (m clamped to server_count).
class MultiUpload final : public UploadStrategy {
 public:
  explicit MultiUpload(std::size_t m);
  std::vector<std::size_t> select_servers(std::size_t client,
                                          std::uint64_t round,
                                          std::size_t server_count,
                                          core::Rng& rng) const override;
  std::string name() const override;

 private:
  std::size_t m_;
};

// "sparse", "full", or "multi:<m>".
UploadStrategyPtr make_upload_strategy(const std::string& spec);

// One-line error message for a malformed spec (empty string = valid).
// CLI front door for make_upload_strategy, which contract-aborts instead.
std::string check_upload_spec(const std::string& spec);

}  // namespace fedms::fl
