#include "fl/server.h"

#include "core/contracts.h"
#include "fl/aggregators.h"

namespace fedms::fl {

ParameterServer::ParameterServer(std::size_t index, byz::AttackPtr attack,
                                 core::Rng rng, std::size_t history_limit)
    : index_(index),
      attack_(std::move(attack)),
      rng_(rng),
      history_limit_(history_limit) {
  FEDMS_EXPECTS(history_limit > 0);
}

void ParameterServer::set_initial_model(std::vector<float> w0) {
  FEDMS_EXPECTS(!w0.empty());
  initial_model_ = w0;
  aggregate_ = std::move(w0);
}

void ParameterServer::set_aggregator(
    std::shared_ptr<const Aggregator> aggregator) {
  aggregator_ = std::move(aggregator);
}

void ParameterServer::aggregate_round(
    std::uint64_t /*round*/, const std::vector<std::vector<float>>& received) {
  last_upload_count_ = received.size();
  // Archive the previous round's aggregate before overwriting it.
  if (!aggregate_.empty()) {
    history_.push_back(aggregate_);
    if (history_.size() > history_limit_)
      history_.erase(history_.begin());
  }
  if (!received.empty()) {
    aggregate_ = aggregator_ ? aggregate_or_mean(*aggregator_, received)
                             : mean_aggregate(received);
  }
  // Otherwise keep the previous aggregate (sparse upload left N_i empty).
  FEDMS_ENSURES(!aggregate_.empty());
}

ParameterServer::Snapshot ParameterServer::snapshot() const {
  Snapshot snap;
  snap.aggregate = aggregate_;
  snap.history = history_;
  snap.last_upload_count = last_upload_count_;
  snap.rng = rng_;
  return snap;
}

void ParameterServer::restore(const Snapshot& snapshot) {
  aggregate_ = snapshot.aggregate;
  history_ = snapshot.history;
  last_upload_count_ = snapshot.last_upload_count;
  rng_ = snapshot.rng;
}

void ParameterServer::reset_state() {
  aggregate_ = initial_model_;
  history_.clear();
  last_upload_count_ = 0;
}

void ParameterServer::set_attack(byz::AttackPtr attack) {
  attack_ = std::move(attack);
}

std::vector<float> ParameterServer::disseminate(std::uint64_t round,
                                                std::size_t client) {
  FEDMS_EXPECTS(!aggregate_.empty());
  if (!attack_) return aggregate_;
  byz::AttackContext context;
  context.round = round;
  context.server_index = index_;
  context.recipient_client = client;
  context.honest_aggregate = &aggregate_;
  context.history = &history_;
  context.initial_model = &initial_model_;
  return attack_->tamper(context, rng_);
}

}  // namespace fedms::fl
