// High-level experiment builder: dataset synthesis, Dirichlet partitioning,
// per-client learner construction with a common initial model w₀, and
// FedMsRun assembly — the paper's Table-II setup as one call.
//
// This is the entry point the examples and every figure bench use; lower
// layers remain directly constructible for custom setups.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/config.h"
#include "fl/fedms.h"
#include "fl/nn_learner.h"

namespace fedms::fl {

struct WorkloadConfig {
  // Dataset (synthetic CIFAR-10 stand-in; see DESIGN.md §2).
  std::size_t samples = 3000;
  std::size_t feature_dimension = 64;  // vector models
  std::size_t image_size = 8;          // image models (square, 3 channels)
  std::size_t classes = 10;
  float class_separation = 3.0f;
  double test_fraction = 0.25;
  // Data heterogeneity: Dirichlet D_α (Table II sweeps {1, 5, 10, 1000}).
  double dirichlet_alpha = 10.0;

  // Model: "mlp" (vector data), "logistic" (vector data),
  // "mobilenet" (image data).
  std::string model = "mlp";
  std::vector<std::size_t> mlp_hidden = {32};

  // Local optimizer.
  std::size_t batch_size = 32;
  double learning_rate = 0.3;
  // Optional schedule spec overriding learning_rate (see NnLearnerOptions).
  std::string lr_schedule;
  double momentum = 0.0;
  double weight_decay = 0.0;
  // Test samples per evaluate() call (0 = all).
  std::size_t eval_sample_cap = 512;
  // Federated evaluation (extension): when true, the test set is split iid
  // across clients and each client evaluates on its own local shard — the
  // realistic setting where no party holds a global test set. The paper
  // (and the default) evaluates every client on the full test set.
  bool local_test_shards = false;
};

struct Workload {
  data::Dataset train;
  data::Dataset test;
  data::PartitionIndices partition;  // per-client index pools
};

// Synthesizes the dataset and Dirichlet-partitions it across
// `fed.clients` clients. Deterministic in fed.seed.
Workload make_workload(const WorkloadConfig& workload,
                       const FedMsConfig& fed);

// Builds one NnLearner per client, all initialized to the same w₀
// (identical per-seed weight draws). The returned learners reference
// `data`, which must outlive them.
std::vector<LearnerPtr> make_nn_learners(const Workload& data,
                                         const WorkloadConfig& workload,
                                         const FedMsConfig& fed);

// Client k's learner alone — bit-identical to make_nn_learners(...)[k].
// This is what a single-client *process* builds: every client derives its
// own RNG streams from the shared seed, so building one learner or all of
// them yields the same per-client state.
LearnerPtr make_nn_learner(const Workload& data,
                           const WorkloadConfig& workload,
                           const FedMsConfig& fed, std::size_t k);

// The common initial model w₀ (trainable parameters + batch-norm running
// stats, flattened) — what every PS starts from. Needs no dataset, so a
// PS process can compute it without synthesizing the workload.
std::vector<float> initial_model(const WorkloadConfig& workload,
                                 const FedMsConfig& fed);

// The fedgreed:<k> root-batch scorer: loss of a candidate model on a
// fixed root batch of min(fed.fedgreed_root_samples, test-set size)
// held-out test examples drawn once on the "fedgreed-root" stream.
// Installs it on `filter` and returns true when the filter is a
// FedGreedAggregator; no-op (false) for every other rule. Every execution
// path with a dataset (sync sim, transport client nodes, scenario engine)
// calls this right after building its client filter, so the loss-based
// selection derives bit-identically everywhere — the --verify contract.
// The closure owns its scorer model but references `data`, which must
// outlive the filter; it is stateful, matching the serial filter calls of
// every runtime.
bool install_fedgreed_scorer(Aggregator& filter, const Workload& data,
                             const WorkloadConfig& workload,
                             const FedMsConfig& fed);

// One-call experiment: workload + learners + FedMsRun::run().
RunResult run_experiment(const WorkloadConfig& workload,
                         const FedMsConfig& fed);

// Centralized baseline: trains ONE model of the same architecture on the
// pooled training data (no federation, no attacks) — the classical upper
// bound every FL comparison is read against. `epochs` passes of mini-batch
// SGD over the pooled data; evaluation on the same held-out test split the
// federated runs use. Deterministic in fed.seed (the dataset, split, and
// model init are identical to the federated experiment's).
struct CentralizedResult {
  std::vector<double> epoch_accuracy;  // after each epoch
  double final_accuracy = 0.0;
};
CentralizedResult run_centralized_baseline(const WorkloadConfig& workload,
                                           const FedMsConfig& fed,
                                           std::size_t epochs);

// Experiment that also hands back the run object (for inspecting servers,
// traffic, or attaching callbacks before calling run()).
struct Experiment {
  // Owns the workload so learners' dataset references stay valid.
  std::unique_ptr<Workload> data;
  std::unique_ptr<FedMsRun> run;
};
Experiment make_experiment(const WorkloadConfig& workload,
                           const FedMsConfig& fed);

}  // namespace fedms::fl
