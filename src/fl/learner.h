// The local-training abstraction a federated client drives.
//
// The orchestrator is agnostic to what is being learned: a LocalLearner
// exposes its parameters as a flat ℝ^d vector and can run E local SGD
// steps. Two implementations ship: `NnLearner` (neural classifier on a
// dataset partition — the paper's experimental setting) and
// `QuadraticLearner` (strongly convex objective — the Theorem-1 setting).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace fedms::fl {

struct LearnerEval {
  double loss = 0.0;
  double accuracy = 0.0;  // 0 for learners with no classification notion
};

class LocalLearner {
 public:
  virtual ~LocalLearner() = default;

  // Dimension d of the flat parameter vector.
  virtual std::size_t dimension() const = 0;

  // Current parameters as the flat payload uploaded to PSs.
  virtual std::vector<float> parameters() = 0;

  // Installs a (filtered) global model for the next local round.
  virtual void set_parameters(const std::vector<float>& flat) = 0;

  // Runs `steps` mini-batch SGD iterations on the local objective. The
  // learner owns its learning-rate schedule; the global step count persists
  // across rounds so non-increasing schedules behave as in the analysis.
  // Returns the mean training loss across the executed steps.
  virtual double local_training(std::size_t steps) = 0;

  // Evaluates the learner's current model (test accuracy for classifiers;
  // global objective value for convex learners).
  virtual LearnerEval evaluate() = 0;
};

using LearnerPtr = std::unique_ptr<LocalLearner>;

}  // namespace fedms::fl
