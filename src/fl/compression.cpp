#include "fl/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/contracts.h"

namespace fedms::fl {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(std::uint8_t(v & 0xff));
  out.push_back(std::uint8_t((v >> 8) & 0xff));
  out.push_back(std::uint8_t((v >> 16) & 0xff));
  out.push_back(std::uint8_t((v >> 24) & 0xff));
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& bytes,
                       std::size_t offset) {
  if (offset + 4 > bytes.size())
    throw std::runtime_error("fedms: truncated codec buffer");
  return std::uint32_t(bytes[offset]) | (std::uint32_t(bytes[offset + 1]) << 8) |
         (std::uint32_t(bytes[offset + 2]) << 16) |
         (std::uint32_t(bytes[offset + 3]) << 24);
}

void append_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  append_u32(out, bits);
}

float read_f32(const std::vector<std::uint8_t>& bytes, std::size_t offset) {
  const std::uint32_t bits = read_u32(bytes, offset);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

}  // namespace

std::vector<float> PayloadCodec::roundtrip(
    const std::vector<float>& values) const {
  return decode(encode(values));
}

// ---- identity ----

std::vector<std::uint8_t> IdentityCodec::encode(
    const std::vector<float>& values) const {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 4 * values.size());
  append_u32(out, std::uint32_t(values.size()));
  for (const float v : values) append_f32(out, v);
  return out;
}

std::vector<float> IdentityCodec::decode(
    const std::vector<std::uint8_t>& bytes) const {
  const std::uint32_t n = read_u32(bytes, 0);
  if (bytes.size() != 4 + 4 * std::size_t(n))
    throw std::runtime_error("fedms: bad identity-codec buffer");
  std::vector<float> values(n);
  for (std::uint32_t i = 0; i < n; ++i) values[i] = read_f32(bytes, 4 + 4 * i);
  return values;
}

// ---- fp16 ----

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent =
      std::int32_t((bits >> 23) & 0xffu) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7fffffu;

  if (((bits >> 23) & 0xffu) == 0xffu) {  // inf / NaN
    return std::uint16_t(sign | 0x7c00u | (mantissa ? 0x200u : 0u));
  }
  if (exponent >= 0x1f) {  // overflow -> inf
    return std::uint16_t(sign | 0x7c00u);
  }
  if (exponent <= 0) {  // subnormal or zero
    if (exponent < -10) return std::uint16_t(sign);
    mantissa |= 0x800000u;  // implicit leading 1
    const std::uint32_t shift = std::uint32_t(14 - exponent);
    // Round to nearest even.
    const std::uint32_t rounded =
        (mantissa + (1u << (shift - 1)) +
         ((mantissa >> shift) & 1u) - 1u) >>
        shift;
    return std::uint16_t(sign | rounded);
  }
  // Normal number: round mantissa from 23 to 10 bits, nearest-even.
  const std::uint32_t round_bit = 1u << 12;
  std::uint32_t half =
      sign | (std::uint32_t(exponent) << 10) | (mantissa >> 13);
  if ((mantissa & round_bit) &&
      ((mantissa & (round_bit - 1)) || (half & 1u)))
    ++half;  // may carry into the exponent, which is the correct behaviour
  return std::uint16_t(half);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = std::uint32_t(half & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1fu;
  std::uint32_t mantissa = half & 0x3ffu;
  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal half: renormalize.
      std::int32_t e = -1;
      do {
        mantissa <<= 1;
        ++e;
      } while (!(mantissa & 0x400u));
      mantissa &= 0x3ffu;
      bits = sign | (std::uint32_t(127 - 15 - e) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1f) {
    bits = sign | 0x7f800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, 4);
  return value;
}

std::vector<std::uint8_t> Fp16Codec::encode(
    const std::vector<float>& values) const {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 2 * values.size());
  append_u32(out, std::uint32_t(values.size()));
  for (const float v : values) {
    const std::uint16_t h = float_to_half(v);
    out.push_back(std::uint8_t(h & 0xff));
    out.push_back(std::uint8_t(h >> 8));
  }
  return out;
}

std::vector<float> Fp16Codec::decode(
    const std::vector<std::uint8_t>& bytes) const {
  const std::uint32_t n = read_u32(bytes, 0);
  if (bytes.size() != 4 + 2 * std::size_t(n))
    throw std::runtime_error("fedms: bad fp16-codec buffer");
  std::vector<float> values(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t h = std::uint16_t(
        std::uint16_t(bytes[4 + 2 * i]) |
        (std::uint16_t(bytes[4 + 2 * i + 1]) << 8));
    values[i] = half_to_float(h);
  }
  return values;
}

// ---- int8 ----

Int8Codec::Int8Codec(std::size_t block_size) : block_size_(block_size) {
  FEDMS_EXPECTS(block_size > 0);
}

std::vector<std::uint8_t> Int8Codec::encode(
    const std::vector<float>& values) const {
  std::vector<std::uint8_t> out;
  const std::size_t blocks =
      values.empty() ? 0 : (values.size() + block_size_ - 1) / block_size_;
  out.reserve(8 + blocks * (4 + block_size_));
  append_u32(out, std::uint32_t(values.size()));
  append_u32(out, std::uint32_t(block_size_));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * block_size_;
    const std::size_t end = std::min(begin + block_size_, values.size());
    // Non-finite values get the reserved -128 code (decoded as NaN) and
    // are excluded from the scale: an Inf must neither poison the whole
    // block's scale nor silently saturate into a finite value.
    float max_abs = 0.0f;
    for (std::size_t i = begin; i < end; ++i)
      if (std::isfinite(values[i]))
        max_abs = std::max(max_abs, std::abs(values[i]));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    append_f32(out, scale);
    for (std::size_t i = begin; i < end; ++i) {
      if (!std::isfinite(values[i])) {
        out.push_back(std::uint8_t(std::int8_t(-128)));
        continue;
      }
      const int q = int(std::lround(values[i] / scale));
      out.push_back(std::uint8_t(std::int8_t(std::clamp(q, -127, 127))));
    }
  }
  return out;
}

std::vector<float> Int8Codec::decode(
    const std::vector<std::uint8_t>& bytes) const {
  const std::uint32_t n = read_u32(bytes, 0);
  const std::uint32_t block = read_u32(bytes, 4);
  if (block == 0) throw std::runtime_error("fedms: bad int8 block size");
  std::vector<float> values(n);
  std::size_t offset = 8;
  for (std::size_t begin = 0; begin < n; begin += block) {
    const std::size_t end = std::min<std::size_t>(begin + block, n);
    const float scale = read_f32(bytes, offset);
    offset += 4;
    if (offset + (end - begin) > bytes.size())
      throw std::runtime_error("fedms: truncated int8 buffer");
    for (std::size_t i = begin; i < end; ++i) {
      const std::int8_t q = std::int8_t(bytes[offset++]);
      values[i] = q == -128 ? std::numeric_limits<float>::quiet_NaN()
                            : float(q) * scale;
    }
  }
  if (offset != bytes.size())
    throw std::runtime_error("fedms: trailing int8 bytes");
  return values;
}

PayloadCodecPtr make_codec(const std::string& name) {
  if (name == "none") return std::make_unique<IdentityCodec>();
  if (name == "fp16") return std::make_unique<Fp16Codec>();
  if (name == "int8") return std::make_unique<Int8Codec>();
  FEDMS_EXPECTS(!"unknown codec name");
  return nullptr;
}

}  // namespace fedms::fl
