#include "fl/nn_learner.h"

#include <algorithm>

#include "core/contracts.h"
#include "nn/params.h"

namespace fedms::fl {

NnLearner::NnLearner(const data::Dataset& train,
                     std::vector<std::size_t> pool,
                     const data::Dataset& test,
                     std::unique_ptr<nn::Sequential> model,
                     const NnLearnerOptions& options, core::Rng sampler_rng,
                     std::vector<std::size_t> test_pool)
    : train_(train),
      test_(test),
      test_pool_(std::move(test_pool)),
      classifier_(std::move(model)),
      sampler_(std::move(pool), options.batch_size, sampler_rng),
      optimizer_(options.lr_schedule.empty()
                     ? std::make_unique<nn::ConstantSchedule>(
                           options.learning_rate)
                     : nn::make_schedule(options.lr_schedule),
                 nn::SgdOptions{options.momentum, options.weight_decay}),
      options_(options) {
  dimension_ = nn::state_count(classifier_.net());
  FEDMS_EXPECTS(dimension_ > 0);
}

std::vector<float> NnLearner::parameters() {
  return nn::flatten_state(classifier_.net());
}

void NnLearner::set_parameters(const std::vector<float>& flat) {
  FEDMS_EXPECTS(flat.size() == dimension_);
  nn::load_state(classifier_.net(), flat);
}

double NnLearner::local_training(std::size_t steps) {
  FEDMS_EXPECTS(steps > 0);
  double loss_sum = 0.0;
  const auto params = classifier_.params();
  for (std::size_t i = 0; i < steps; ++i) {
    const auto batch_indices = sampler_.next_batch();
    const data::Batch batch = data::make_batch(train_, batch_indices);
    loss_sum += classifier_.compute_gradients(batch.inputs, batch.labels);
    optimizer_.step(params);
  }
  return loss_sum / double(steps);
}

LearnerEval NnLearner::evaluate() {
  const std::size_t available =
      test_pool_.empty() ? test_.size() : test_pool_.size();
  const std::size_t cap =
      options_.eval_sample_cap == 0
          ? available
          : std::min(options_.eval_sample_cap, available);
  FEDMS_EXPECTS(cap > 0);
  constexpr std::size_t kEvalBatch = 256;
  double loss_sum = 0.0;
  std::size_t correct = 0, seen = 0;
  std::vector<std::size_t> indices;
  for (std::size_t begin = 0; begin < cap; begin += kEvalBatch) {
    const std::size_t end = std::min(begin + kEvalBatch, cap);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      indices[i - begin] = test_pool_.empty() ? i : test_pool_[i];
    const data::Batch batch = data::make_batch(test_, indices);
    const nn::EvalResult result =
        classifier_.evaluate(batch.inputs, batch.labels);
    loss_sum += result.loss * double(result.sample_count);
    correct += static_cast<std::size_t>(
        result.accuracy * double(result.sample_count) + 0.5);
    seen += result.sample_count;
  }
  return LearnerEval{loss_sum / double(seen),
                     double(correct) / double(seen)};
}

}  // namespace fedms::fl
