// Per-connection state machine for the event-loop server runtime.
//
// Lifecycle:  kHandshake --hello--> kActive --EOF/error/evict--> kClosed
//
//   * kHandshake — accepted but unidentified. The first complete frame
//     must be a kHello naming the peer; anything else (or a corrupt
//     hello) closes the connection. Bytes that rode in behind the hello
//     (the peer's first round may already be in flight) stay buffered
//     and decode as normal traffic.
//   * kActive    — identified; inbound bytes are framed and decoded,
//     outbound frames queue in a bounded send queue drained on
//     writability (EPOLLOUT). CRC-rejected frames are counted and
//     skipped; a desynchronized stream (bad magic/version) closes the
//     connection — on a multiplexed server one broken peer must never
//     take the process down, unlike the blocking runner which throws.
//   * kClosed    — terminal; the owner deregisters and closes the fd.
//
// The class owns the fd and its buffers but performs no event
// registration — the server drives it from reactor readiness and applies
// policy (backpressure caps, idle/handshake timeouts, eviction).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/message.h"
#include "transport/frame.h"

namespace fedms::eventloop {

class Connection {
 public:
  enum class State { kHandshake, kActive, kClosed };

  Connection(int fd, std::uint64_t now_ns);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  State state() const { return state_; }
  bool closed() const { return state_ == State::kClosed; }
  // Valid once kActive (set by the hello frame).
  const net::NodeId& peer() const { return peer_; }

  // Timestamps for the server's timeout sweeps: when the connection was
  // accepted, and when it last made I/O progress in either direction.
  std::uint64_t accepted_ns() const { return accepted_ns_; }
  std::uint64_t last_progress_ns() const { return last_progress_ns_; }

  struct ReadResult {
    bool identified = false;  // this read completed the handshake
    std::size_t corrupt_frames = 0;
    std::vector<net::Message> messages;
    // Set when the connection transitioned to kClosed during this read:
    // "eof" (orderly hangup), or a protocol reason (desync, bad hello).
    const char* closed_reason = nullptr;
  };

  // Drains readable bytes (nonblocking) and decodes complete frames.
  // Handles the handshake transition internally.
  ReadResult on_readable(const transport::FrameCodec& codec,
                         std::uint64_t now_ns);

  // Queues one encoded frame. Returns false — without queueing — when
  // the queue already holds >= `cap_bytes` (the backpressure signal; the
  // caller decides whether to wait, retry, or evict). cap_bytes == 0
  // means unbounded.
  bool enqueue(std::vector<std::uint8_t> frame, std::size_t cap_bytes);

  // Writes queued bytes until EAGAIN or the queue empties (nonblocking,
  // MSG_NOSIGNAL, EINTR-retried). A send error closes the connection.
  void on_writable(std::uint64_t now_ns);

  bool wants_write() const { return !tx_.empty() && !closed(); }
  std::size_t queued_bytes() const { return tx_bytes_; }

  // Closes the fd and drops all buffered state. Idempotent.
  void close();

 private:
  int fd_;
  State state_ = State::kHandshake;
  net::NodeId peer_;
  std::uint64_t accepted_ns_;
  std::uint64_t last_progress_ns_;
  std::vector<std::uint8_t> rx_;
  std::deque<std::vector<std::uint8_t>> tx_;
  std::size_t tx_front_offset_ = 0;  // bytes of tx_.front() already sent
  std::size_t tx_bytes_ = 0;
};

}  // namespace fedms::eventloop
