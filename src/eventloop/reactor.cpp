#include "eventloop/reactor.h"

#if defined(__linux__)
#include <sys/epoll.h>
#endif
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/contracts.h"

namespace fedms::eventloop {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int timeout_ms(double timeout_seconds) {
  if (timeout_seconds <= 0.0) return 0;
  // +1 so a sub-millisecond remainder never busy-spins at 0 ms.
  const double ms = timeout_seconds * 1000.0 + 1.0;
  return ms > 86400000.0 ? 86400000 : int(ms);
}

#if defined(__linux__)
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
#endif

}  // namespace

Reactor::Backend Reactor::default_backend() {
#if defined(__linux__)
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

const char* Reactor::to_string(Backend backend) {
  return backend == Backend::kEpoll ? "epoll" : "poll";
}

Reactor::Reactor(Backend backend) : backend_(backend) {
  if (backend_ == Backend::kEpoll) {
#if defined(__linux__)
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) raise_errno("epoll_create1");
#else
    throw std::runtime_error("epoll backend is not available on this platform");
#endif
  }
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Reactor::Interest& Reactor::interest_for(int fd) {
  FEDMS_EXPECTS(fd >= 0);
  if (std::size_t(fd) >= interests_.size())
    interests_.resize(std::size_t(fd) + 1);
  return interests_[std::size_t(fd)];
}

void Reactor::add(int fd, bool want_read, bool want_write, void* user) {
  Interest& interest = interest_for(fd);
  FEDMS_EXPECTS(!interest.active);
  interest.active = true;
  interest.user = user;
  interest.want_read = want_read;
  interest.want_write = want_write;
  ++active_count_;
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0)
      raise_errno("epoll_ctl(ADD)");
  }
#endif
}

void Reactor::modify(int fd, bool want_read, bool want_write) {
  Interest& interest = interest_for(fd);
  FEDMS_EXPECTS(interest.active);
  if (interest.want_read == want_read && interest.want_write == want_write)
    return;
  interest.want_read = want_read;
  interest.want_write = want_write;
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0)
      raise_errno("epoll_ctl(MOD)");
  }
#endif
}

void Reactor::remove(int fd) {
  Interest& interest = interest_for(fd);
  FEDMS_EXPECTS(interest.active);
  interest = Interest{};
  --active_count_;
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};  // non-null for pre-2.6.9 kernels
    // EBADF/ENOENT: a handler already closed the fd, and the kernel drops
    // closed fds from the interest list itself — deregistering after the
    // close is then a no-op, not an error.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev) < 0 &&
        errno != EBADF && errno != ENOENT)
      raise_errno("epoll_ctl(DEL)");
  }
#endif
}

std::size_t Reactor::wait(double timeout_seconds, std::vector<Event>& out) {
  out.clear();
  if (backend_ == Backend::kEpoll) {
#if defined(__linux__)
    epoll_event events[256];
    const int rc = ::epoll_wait(epoll_fd_, events, 256,
                                timeout_ms(timeout_seconds));
    if (rc < 0) {
      if (errno == EINTR) return 0;
      raise_errno("epoll_wait");
    }
    for (int i = 0; i < rc; ++i) {
      const int fd = events[i].data.fd;
      const Interest& interest = interests_[std::size_t(fd)];
      // A fd removed by an earlier event's handler in the same batch can
      // still be reported; skip stale entries.
      if (!interest.active) continue;
      Event event;
      event.fd = fd;
      event.user = interest.user;
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.broken = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(event);
    }
    return out.size();
#else
    return 0;  // unreachable: the constructor rejects kEpoll off-Linux
#endif
  }

  pollfds_.clear();
  for (int fd = 0; std::size_t(fd) < interests_.size(); ++fd) {
    const Interest& interest = interests_[std::size_t(fd)];
    if (!interest.active) continue;
    short events = 0;
    if (interest.want_read) events |= POLLIN;
    if (interest.want_write) events |= POLLOUT;
    pollfds_.push_back(pollfd{fd, events, 0});
  }
  const int rc = ::poll(pollfds_.data(), nfds_t(pollfds_.size()),
                        timeout_ms(timeout_seconds));
  if (rc < 0) {
    if (errno == EINTR) return 0;
    raise_errno("poll");
  }
  for (const pollfd& p : pollfds_) {
    if (p.revents == 0) continue;
    const Interest& interest = interests_[std::size_t(p.fd)];
    if (!interest.active) continue;
    Event event;
    event.fd = p.fd;
    event.user = interest.user;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(event);
  }
  return out.size();
}

}  // namespace fedms::eventloop
