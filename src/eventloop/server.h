// Event-loop server runtime: one process, one thread, thousands of
// clients.
//
// EventLoopServer is a `transport::Transport`, so the bit-for-bit
// protocol engine in src/transport/node_runner.* runs against it
// unchanged — the blocking SocketTransport and this runtime are proven
// equal by the same differential oracles. Where SocketTransport holds one
// blocking-ish connection per peer, this endpoint multiplexes every
// client over a single epoll/poll reactor with nonblocking I/O:
//
//   * receive() services the reactor until a decoded message is
//     available: accepts, per-connection reads, frame extraction, and
//     EPOLLOUT-driven drains all happen inside the caller's wait.
//   * send() encodes and queues the frame on the destination connection
//     (bounded queue, see below) with an opportunistic inline drain; the
//     reactor's write interest is armed only while a queue is non-empty.
//
// Backpressure: each connection's send queue is capped at
// `max_queue_bytes` (high-water mark — one frame may overshoot). A send
// to a full queue services the loop until the reader drains room; a
// reader that makes no progress for `drain_stall_seconds` is evicted
// (counted in `evicted_slow`) and the message dropped, so one slow
// client can never wedge a 10k-client round.
//
// Churn: connections identify with a kHello frame (handshake state). A
// hello for an already-identified peer replaces the old connection
// (rejoin — counted), and previously received messages are retained, so
// disconnect + reconnect within a round loses only in-flight frames.
// Handshake connections older than `handshake_timeout_seconds` are
// half-open casualties and get reaped; `idle_timeout_seconds` (default
// off) does the same for silent identified peers. Sends to absent or
// closed peers are silently dropped and counted (`dropped_sends`) — on a
// multiplexed server a vanished client is routine, not fatal.
//
// Threading: single-threaded by design; the protocol engine drives
// send/receive from one thread and the reactor does the multiplexing.
// CPU-heavy aggregation parallelism lives in fl::set_aggregation_pool,
// not here.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eventloop/connection.h"
#include "eventloop/reactor.h"
#include "transport/socket_transport.h"
#include "transport/transport.h"

namespace fedms::eventloop {

struct EventLoopOptions {
  // Session payload codec — must match the run's upload_compression.
  std::string payload_codec = "none";
  Reactor::Backend backend = Reactor::default_backend();
  // Per-connection send-queue high-water mark; 0 = unbounded.
  std::size_t max_queue_bytes = std::size_t(4) << 20;
  // A full queue that drains nothing for this long evicts the reader.
  double drain_stall_seconds = 10.0;
  // Unidentified connections older than this are reaped as half-open.
  double handshake_timeout_seconds = 10.0;
  // Identified connections silent for this long are reaped; 0 = off
  // (the round barrier already bounds how long a healthy client is quiet).
  double idle_timeout_seconds = 0.0;
};

class EventLoopServer final : public transport::Transport {
 public:
  // Endpoint with no listener: connections arrive via adopt() (tests,
  // socketpair harnesses).
  EventLoopServer(const net::NodeId& self, const EventLoopOptions& options);
  // Binds + listens on `address` and accepts (and re-accepts, for churn)
  // for the lifetime of the endpoint.
  static std::unique_ptr<EventLoopServer> listen(
      const net::NodeId& self, const transport::SocketAddress& address,
      const EventLoopOptions& options = {});

  ~EventLoopServer() override;

  net::NodeId self() const override { return self_; }
  void send(net::Message message) override;
  std::optional<net::Message> receive(double timeout_seconds) override;
  const transport::EndpointStats& stats() const override { return stats_; }
  // From the peer's latest kHello (a rejoin's hello replaces the old
  // announcement); "f32" for peers that never announced one.
  std::string peer_encoding(const net::NodeId& peer) const override;

  // Adopts an already-connected fd as an unidentified (handshake-state)
  // connection — it still must hello like an accepted one.
  void adopt(int fd);

  // One reactor turn: waits up to `timeout_seconds`, services accepts,
  // reads, writes, and timeout sweeps. Returns the number of readiness
  // events handled. receive()/send() call this internally; tests and the
  // flush path call it directly.
  std::size_t poll_once(double timeout_seconds);

  // Services the loop until every send queue is empty (all broadcasts on
  // the wire) or `timeout_seconds` elapses. Returns true when drained.
  // The destructor flushes too, so a server that returns from its last
  // round cannot strand final-round frames in user space.
  bool flush(double timeout_seconds = 10.0);

  Reactor::Backend backend() const { return reactor_.backend(); }
  std::size_t connection_count() const { return conns_.size(); }
  std::size_t identified_count() const { return by_peer_.size(); }
  std::uint64_t dropped_sends() const { return dropped_sends_; }
  std::uint64_t evicted_slow() const { return evicted_slow_; }
  std::uint64_t rejoins() const { return rejoins_; }
  std::uint64_t half_open_closed() const { return half_open_closed_; }
  std::uint64_t idle_closed() const { return idle_closed_; }

 private:
  Connection* identified(const net::NodeId& peer);
  void accept_ready();
  void handle_event(const Reactor::Event& event);
  void ingest(Connection* conn, Connection::ReadResult result);
  void bind_peer(Connection* conn);
  // Deregisters, closes, and forgets the connection owning `fd`.
  void reap(int fd);
  void sweep_timeouts(std::uint64_t now);
  // Backpressure wait: services the loop until `to`'s queue has room.
  // Returns nullptr when the peer vanished or was evicted for stalling.
  Connection* wait_for_room(const net::NodeId& to);

  net::NodeId self_;
  EventLoopOptions options_;
  transport::FrameCodec codec_;
  Reactor reactor_;
  int listener_fd_ = -1;
  transport::SocketAddress address_;
  bool unlink_on_close_ = false;

  std::map<int, std::unique_ptr<Connection>> conns_;  // keyed by fd
  std::map<net::NodeId, Connection*> by_peer_;        // identified only
  std::map<net::NodeId, std::string> peer_encodings_;  // from hellos
  std::deque<net::Message> inbox_;
  transport::EndpointStats stats_;
  std::vector<Reactor::Event> events_;  // wait() scratch
  std::uint64_t last_sweep_ns_ = 0;

  std::uint64_t dropped_sends_ = 0;
  std::uint64_t evicted_slow_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t half_open_closed_ = 0;
  std::uint64_t idle_closed_ = 0;
};

// Probes RLIMIT_NOFILE for `required` descriptors, raising the soft limit
// toward the hard limit when needed. Returns "" on success, else a
// one-line actionable error naming the current and required limits — the
// caller should fail fast instead of dying mid-accept.
std::string ensure_fd_budget(std::size_t required);

}  // namespace fedms::eventloop
