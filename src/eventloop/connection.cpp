#include "eventloop/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace fedms::eventloop {

Connection::Connection(int fd, std::uint64_t now_ns)
    : fd_(fd), accepted_ns_(now_ns), last_progress_ns_(now_ns) {}

Connection::~Connection() { close(); }

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  state_ = State::kClosed;
  rx_.clear();
  tx_.clear();
  tx_front_offset_ = 0;
  tx_bytes_ = 0;
}

Connection::ReadResult Connection::on_readable(
    const transport::FrameCodec& codec, std::uint64_t now_ns) {
  ReadResult result;
  if (closed()) return result;

  bool eof = false;
  for (;;) {
    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      rx_.insert(rx_.end(), chunk, chunk + n);
      last_progress_ns_ = now_ns;
      if (std::size_t(n) < sizeof chunk) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // hard socket error: same handling as hangup
    break;
  }

  // Decode every complete frame buffered so far. Unlike the blocking
  // transport, stream-level damage closes just this connection.
  std::size_t offset = 0;
  while (state_ != State::kClosed) {
    transport::FrameError error = transport::FrameError::kNone;
    const auto size = transport::FrameCodec::frame_size(
        rx_.data() + offset, rx_.size() - offset, &error);
    if (error != transport::FrameError::kNone) {
      close();
      result.closed_reason = "desynchronized stream";
      return result;
    }
    if (!size.has_value() || rx_.size() - offset < *size) break;
    transport::FrameCodec::DecodeResult decoded =
        codec.decode(rx_.data() + offset, *size);
    offset += *size;
    if (state_ == State::kHandshake) {
      if (!decoded.ok() ||
          decoded.message.kind != net::MessageKind::kHello) {
        close();
        result.closed_reason = "expected hello frame";
        return result;
      }
      peer_ = decoded.message.from;
      state_ = State::kActive;
      result.identified = true;
      result.messages.push_back(std::move(decoded.message));
      continue;
    }
    if (decoded.ok()) {
      result.messages.push_back(std::move(decoded.message));
    } else if (decoded.error == transport::FrameError::kCrcMismatch ||
               decoded.error == transport::FrameError::kBadPayload) {
      ++result.corrupt_frames;
    } else {
      close();
      result.closed_reason = "undecodable frame";
      return result;
    }
  }
  if (offset > 0)
    rx_.erase(rx_.begin(), rx_.begin() + std::ptrdiff_t(offset));

  if (eof) {
    close();
    result.closed_reason = "eof";
  }
  return result;
}

bool Connection::enqueue(std::vector<std::uint8_t> frame,
                         std::size_t cap_bytes) {
  if (closed()) return true;  // silently dropped; the peer is gone
  if (cap_bytes != 0 && tx_bytes_ >= cap_bytes) return false;
  tx_bytes_ += frame.size();
  tx_.push_back(std::move(frame));
  return true;
}

void Connection::on_writable(std::uint64_t now_ns) {
  while (!closed() && !tx_.empty()) {
    const std::vector<std::uint8_t>& front = tx_.front();
    const std::size_t remaining = front.size() - tx_front_offset_;
    const ssize_t n = ::send(fd_, front.data() + tx_front_offset_,
                             remaining, MSG_NOSIGNAL);
    if (n > 0) {
      last_progress_ns_ = now_ns;
      tx_bytes_ -= std::size_t(n);
      if (std::size_t(n) == remaining) {
        tx_.pop_front();
        tx_front_offset_ = 0;
      } else {
        tx_front_offset_ += std::size_t(n);
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close();  // EPIPE/ECONNRESET: owner observes closed() and reaps
    return;
  }
}

}  // namespace fedms::eventloop
