#include "eventloop/server.h"

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "core/contracts.h"

namespace fedms::eventloop {

namespace {

std::uint64_t now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now()
                               .time_since_epoch())
                           .count());
}

double now_seconds() { return double(now_ns()) * 1e-9; }

constexpr std::uint64_t kSweepIntervalNs = 100'000'000;  // 100 ms

}  // namespace

EventLoopServer::EventLoopServer(const net::NodeId& self,
                                 const EventLoopOptions& options)
    : self_(self),
      options_(options),
      codec_(options.payload_codec),
      reactor_(options.backend) {}

std::unique_ptr<EventLoopServer> EventLoopServer::listen(
    const net::NodeId& self, const transport::SocketAddress& address,
    const EventLoopOptions& options) {
  auto server = std::make_unique<EventLoopServer>(self, options);
  server->listener_fd_ = transport::make_listener(address, 1024);
  server->address_ = address;
  server->unlink_on_close_ =
      address.kind == transport::SocketAddress::Kind::kUnix;
  server->reactor_.add(server->listener_fd_, true, false, nullptr);
  return server;
}

EventLoopServer::~EventLoopServer() {
  flush(5.0);
  if (listener_fd_ >= 0) {
    reactor_.remove(listener_fd_);
    ::close(listener_fd_);
    if (unlink_on_close_) ::unlink(address_.path.c_str());
  }
  // Connections deregister here (their dtors close the fds after).
  for (auto& [fd, conn] : conns_) reactor_.remove(fd);
}

void EventLoopServer::adopt(int fd) {
  transport::set_nonblocking(fd);
  auto conn = std::make_unique<Connection>(fd, now_ns());
  reactor_.add(fd, true, false, nullptr);
  conns_.emplace(fd, std::move(conn));
}

Connection* EventLoopServer::identified(const net::NodeId& peer) {
  const auto it = by_peer_.find(peer);
  return it == by_peer_.end() ? nullptr : it->second;
}

std::string EventLoopServer::peer_encoding(const net::NodeId& peer) const {
  const auto it = peer_encodings_.find(peer);
  return it == peer_encodings_.end() ? "f32" : it->second;
}

void EventLoopServer::send(net::Message message) {
  FEDMS_EXPECTS(message.from == self_);
  Connection* conn = identified(message.to);
  if (conn != nullptr && options_.max_queue_bytes != 0 &&
      conn->queued_bytes() >= options_.max_queue_bytes)
    conn = wait_for_room(message.to);
  if (conn == nullptr) {
    // Absent, crashed, or evicted peer: on a multiplexed server this is
    // routine churn. The protocol layer sees a missing message — the
    // fault the trimmed-mean path absorbs. Stats bill only real traffic.
    ++dropped_sends_;
    return;
  }
  std::vector<std::uint8_t> frame = codec_.encode(message);
  const std::size_t framed = frame.size();
  conn->enqueue(std::move(frame), 0);  // room was reserved above
  stats_.count_sent(message, framed);
  const int fd = conn->fd();
  conn->on_writable(now_ns());  // common case: kernel buffer absorbs it
  if (conn->closed()) {
    reap(fd);
    return;
  }
  reactor_.modify(fd, true, conn->wants_write());
}

Connection* EventLoopServer::wait_for_room(const net::NodeId& to) {
  double deadline = now_seconds() + options_.drain_stall_seconds;
  std::size_t last_queued = std::size_t(-1);
  for (;;) {
    Connection* conn = identified(to);
    if (conn == nullptr) return nullptr;
    const std::size_t queued = conn->queued_bytes();
    if (queued < options_.max_queue_bytes) return conn;
    if (queued < last_queued) {
      // Draining, just slower than we fill: keep waiting while there is
      // progress — only a stalled reader gets evicted.
      last_queued = queued;
      deadline = now_seconds() + options_.drain_stall_seconds;
    } else if (now_seconds() >= deadline) {
      ++evicted_slow_;
      reap(conn->fd());
      return nullptr;
    }
    poll_once(0.01);
  }
}

std::optional<net::Message> EventLoopServer::receive(
    double timeout_seconds) {
  const double deadline = now_seconds() + timeout_seconds;
  for (;;) {
    if (!inbox_.empty()) {
      net::Message message = std::move(inbox_.front());
      inbox_.pop_front();
      return message;
    }
    const double remaining = deadline - now_seconds();
    if (remaining <= 0) return std::nullopt;
    // Cap each wait so timeout sweeps keep their ~100 ms cadence even
    // when the protocol blocks for a long round.
    poll_once(std::min(remaining, 0.1));
  }
}

std::size_t EventLoopServer::poll_once(double timeout_seconds) {
  const std::size_t n = reactor_.wait(timeout_seconds, events_);
  bool accepts = false;
  for (const Reactor::Event& event : events_) {
    if (event.fd == listener_fd_) {
      accepts = true;  // deferred: a reaped fd must not be reused by an
      continue;        // accept while its stale events are still in batch
    }
    handle_event(event);
  }
  if (accepts) accept_ready();
  const std::uint64_t now = now_ns();
  if (now - last_sweep_ns_ >= kSweepIntervalNs) {
    last_sweep_ns_ = now;
    sweep_timeouts(now);
  }
  return n;
}

void EventLoopServer::handle_event(const Reactor::Event& event) {
  const auto it = conns_.find(event.fd);
  if (it == conns_.end()) return;  // reaped earlier in this batch
  Connection* conn = it->second.get();
  const std::uint64_t now = now_ns();
  if (event.writable) conn->on_writable(now);
  if (event.readable || event.broken)
    ingest(conn, conn->on_readable(codec_, now));
  if (conn->closed()) {
    reap(event.fd);
    return;
  }
  reactor_.modify(event.fd, true, conn->wants_write());
}

void EventLoopServer::ingest(Connection* conn,
                             Connection::ReadResult result) {
  for (std::size_t i = 0; i < result.corrupt_frames; ++i)
    stats_.count_corrupt(conn->peer());
  for (net::Message& message : result.messages) {
    stats_.count_received(message,
                          transport::FrameCodec::framed_size(message));
    // Hellos are connection plumbing (identification / stray re-hellos):
    // counted as control traffic, never surfaced to the protocol. The
    // announced wire encoding is kept — latest hello wins on rejoin.
    if (message.kind == net::MessageKind::kHello) {
      peer_encodings_[message.from] = message.hello_encoding.empty()
                                          ? "f32"
                                          : message.hello_encoding;
    } else {
      inbox_.push_back(std::move(message));
    }
  }
  if (result.identified) bind_peer(conn);
}

void EventLoopServer::bind_peer(Connection* conn) {
  const auto it = by_peer_.find(conn->peer());
  if (it != by_peer_.end() && it->second != conn) {
    // Rejoin: the peer reconnected (its old connection may be dead
    // without us having seen the hangup yet). Latest connection wins;
    // messages already received from the old one stay valid.
    ++rejoins_;
    reap(it->second->fd());
  }
  by_peer_[conn->peer()] = conn;
}

void EventLoopServer::reap(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  const auto pit = by_peer_.find(conn->peer());
  if (pit != by_peer_.end() && pit->second == conn) by_peer_.erase(pit);
  reactor_.remove(fd);
  conn->close();
  conns_.erase(it);
}

void EventLoopServer::sweep_timeouts(std::uint64_t now) {
  std::vector<int> doomed;
  for (const auto& [fd, conn] : conns_) {
    if (conn->state() == Connection::State::kHandshake) {
      if (options_.handshake_timeout_seconds > 0 &&
          double(now - conn->accepted_ns()) * 1e-9 >=
              options_.handshake_timeout_seconds) {
        ++half_open_closed_;
        doomed.push_back(fd);
      }
    } else if (conn->state() == Connection::State::kActive) {
      if (options_.idle_timeout_seconds > 0 &&
          double(now - conn->last_progress_ns()) * 1e-9 >=
              options_.idle_timeout_seconds) {
        ++idle_closed_;
        doomed.push_back(fd);
      }
    }
  }
  for (const int fd : doomed) reap(fd);
}

void EventLoopServer::accept_ready() {
  if (listener_fd_ < 0) return;
  for (;;) {
    const int fd = ::accept(listener_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN drains the backlog; anything else (ECONNABORTED, EMFILE
      // burst) is transient at accept granularity — the client retries.
      break;
    }
    transport::set_nonblocking(fd);
    if (address_.kind == transport::SocketAddress::Kind::kTcp)
      transport::set_nodelay(fd);
    conns_.emplace(fd, std::make_unique<Connection>(fd, now_ns()));
    reactor_.add(fd, true, false, nullptr);
  }
}

bool EventLoopServer::flush(double timeout_seconds) {
  const double deadline = now_seconds() + timeout_seconds;
  for (;;) {
    bool pending = false;
    for (const auto& [fd, conn] : conns_)
      if (conn->wants_write()) pending = true;
    if (!pending) return true;
    if (now_seconds() >= deadline) return false;
    poll_once(0.01);
  }
}

std::string ensure_fd_budget(std::size_t required) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0)
    return "";  // cannot probe: proceed and let accept report it
  if (rlim_t(required) <= limit.rlim_cur) return "";
  if (rlim_t(required) <= limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = rlim_t(required);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return "";
  }
  return "fd budget too small: RLIMIT_NOFILE soft=" +
         std::to_string(std::uint64_t(limit.rlim_cur)) +
         " hard=" + std::to_string(std::uint64_t(limit.rlim_max)) +
         ", need " + std::to_string(required) +
         " (raise with `ulimit -n " + std::to_string(required) +
         "` or reduce --clients)";
}

}  // namespace fedms::eventloop
