// Readiness reactor: the epoll wrapper under the event-loop server
// runtime, with a poll(2) fallback for portability (and for A/B-testing
// the two backends against each other — they must be behaviorally
// indistinguishable, which tests/eventloop_test.cpp pins).
//
// The reactor owns no fds and runs no callbacks: callers register file
// descriptors with a read/write interest mask and an opaque user pointer,
// then drain readiness events from wait(). Level-triggered semantics on
// both backends — a fd stays reported until the caller consumes the
// condition — so a partially-drained socket can never be lost by an
// event-compression race, and the poll backend needs no extra state to
// match epoll exactly.
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedms::eventloop {

class Reactor {
 public:
  enum class Backend { kEpoll, kPoll };

  // kEpoll on Linux, kPoll elsewhere.
  static Backend default_backend();
  static const char* to_string(Backend backend);

  // Throws std::runtime_error when the preferred backend cannot be set up
  // (e.g. epoll_create1 fails); callers wanting graceful degradation catch
  // and retry with kPoll.
  explicit Reactor(Backend backend = default_backend());
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  Backend backend() const { return backend_; }
  std::size_t watched() const { return active_count_; }

  // Registers `fd` with the given interest mask. `user` is handed back
  // verbatim on every event for this fd. Precondition: fd not registered.
  void add(int fd, bool want_read, bool want_write, void* user);
  // Updates the interest mask of a registered fd.
  void modify(int fd, bool want_read, bool want_write);
  // Deregisters; safe to call right before closing the fd.
  void remove(int fd);

  struct Event {
    int fd = -1;
    void* user = nullptr;
    bool readable = false;
    bool writable = false;
    // Error/hangup condition (EPOLLERR/EPOLLHUP/POLLNVAL). The fd is
    // still readable-until-EOF; callers should read to drain then close.
    bool broken = false;
  };

  // Blocks up to `timeout_seconds` (<= 0 -> immediate poll) and appends
  // ready events to `out` (cleared first). Returns the event count.
  // EINTR is absorbed: an interrupted wait returns 0 events.
  std::size_t wait(double timeout_seconds, std::vector<Event>& out);

 private:
  struct Interest {
    void* user = nullptr;
    bool active = false;
    bool want_read = false;
    bool want_write = false;
  };
  Interest& interest_for(int fd);

  Backend backend_;
  int epoll_fd_ = -1;
  std::size_t active_count_ = 0;
  // fd -> interest, dense by fd (fds are small integers). The poll
  // backend rebuilds its pollfd array from this table every wait — O(n)
  // like poll(2) itself; epoll keeps the kernel's interest list and uses
  // the table only to hand back user pointers.
  std::vector<Interest> interests_;
  std::vector<pollfd> pollfds_;  // poll backend scratch
};

}  // namespace fedms::eventloop
