// Coarse latency model for a round of the synchronous protocol.
//
// Links are modelled as independent (each client and PS has its own access
// link), so a communication stage takes as long as its busiest link:
//   stage_time = max over links (rtt/2 + bytes_on_link / bandwidth).
// This is what makes upload-to-all P× more expensive than sparse upload in
// *time* as well as bytes: with upload-to-all every client's uplink carries
// P model payloads.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "net/message.h"

namespace fedms::net {

struct LinkModel {
  double bandwidth_bytes_per_sec = 12.5e6;  // 100 Mbit/s edge link
  double rtt_sec = 0.02;                    // 20 ms
};

class LatencyModel {
 public:
  explicit LatencyModel(LinkModel link = {}) : default_link_(link) {}

  // Overrides the link parameters of one node (heterogeneous edge
  // networks: a slow client uplink makes that client the stage straggler).
  void set_link(const NodeId& node, LinkModel link);
  const LinkModel& link_for(const NodeId& node) const;
  const LinkModel& default_link() const { return default_link_; }

  // Draws per-node bandwidths log-uniformly in
  // [default/spread, default*spread] for all client and server nodes —
  // a quick way to model heterogeneous edge links.
  template <typename Rng>
  void randomize_links(std::size_t clients, std::size_t servers,
                       double spread, Rng& rng) {
    auto draw = [&] {
      LinkModel link = default_link_;
      const double factor =
          std::exp(rng.uniform(-std::log(spread), std::log(spread)));
      link.bandwidth_bytes_per_sec *= factor;
      return link;
    };
    for (std::size_t k = 0; k < clients; ++k) set_link(client_id(k), draw());
    for (std::size_t s = 0; s < servers; ++s) set_link(server_id(s), draw());
  }

  // Time for one synchronous stage given the messages it carries.
  // Bytes are grouped per sending link; the stage completes when the
  // slowest link finishes.
  double stage_seconds(const std::vector<Message>& messages) const;

  // Convenience: seconds to move `bytes` over the given (or default) link.
  double transfer_seconds(std::uint64_t bytes) const;
  double transfer_seconds(std::uint64_t bytes, const NodeId& node) const;

 private:
  LinkModel default_link_;
  std::map<NodeId, LinkModel> links_;
};

}  // namespace fedms::net
