// Addressing for the simulated edge network: end-side clients and
// edge-side parameter servers.
#pragma once

#include <compare>
#include <cstddef>
#include <string>

namespace fedms::net {

enum class NodeKind { kClient, kServer };

struct NodeId {
  NodeKind kind = NodeKind::kClient;
  std::size_t index = 0;

  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

inline NodeId client_id(std::size_t index) {
  return {NodeKind::kClient, index};
}
inline NodeId server_id(std::size_t index) {
  return {NodeKind::kServer, index};
}

std::string to_string(const NodeId& id);

}  // namespace fedms::net
