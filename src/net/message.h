// Messages exchanged over the simulated network.
//
// The payload is the flat float vector the FL layer works with; its
// wire size is what `tensor::write_floats` would emit plus a fixed header,
// so communication-cost measurements reflect the actual serialized bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/node_id.h"

namespace fedms::net {

enum class MessageKind {
  kModelUpload,     // client -> PS: local model after E local steps
  kModelBroadcast,  // PS -> client: aggregated (possibly tampered) model
  kRetryRequest,    // client -> PS: re-request a missed broadcast (runtime)
};

struct Message {
  NodeId from;
  NodeId to;
  MessageKind kind = MessageKind::kModelUpload;
  std::uint64_t round = 0;
  std::vector<float> payload;
  // When a lossy codec was applied, `payload` holds the *decoded* values
  // the receiver observes and this field holds the encoded size actually
  // sent over the wire. 0 means uncompressed (size derived from payload).
  std::size_t encoded_bytes = 0;
};

// Raw serialized payload size (length prefix + floats), ignoring any codec.
std::size_t payload_bytes(const Message& message);

// Simulated wire size in bytes: header + length-prefixed float payload, or
// header + encoded_bytes when a codec was applied. Contract: a nonzero
// encoded_bytes requires a non-empty decoded payload — an "encoded" size
// on a message that carries nothing is always an accounting bug.
std::size_t wire_size(const Message& message);

// Fixed per-message header budget (addressing, round, kind, length).
inline constexpr std::size_t kMessageHeaderBytes = 64;

const char* to_string(MessageKind kind);

}  // namespace fedms::net
