// Messages exchanged over the simulated network and the real transport.
//
// The payload is the flat float vector the FL layer works with; its
// wire size is what the transport frame codec (src/transport/frame.h)
// actually emits: a fixed header, the length-prefixed float payload (or
// the codec-encoded bytes), and a CRC32C trailer. Simulated accounting
// and real framing share the layout constants below so they can never
// drift — transport/frame.cpp static-asserts its field offsets against
// them and contract-checks every encoded frame against `wire_size`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/node_id.h"

namespace fedms::net {

enum class MessageKind : std::uint8_t {
  kModelUpload,     // client -> PS: local model after E local steps
  kModelBroadcast,  // PS -> client: aggregated (possibly tampered) model
  kRetryRequest,    // client -> PS: re-request a missed broadcast (runtime)
  kHello,           // transport: peer identification after connect
  kRoundSync,       // transport: "all my messages for this round are sent"
};

// One past the last valid MessageKind (frame decoding rejects beyond it).
inline constexpr std::uint8_t kMessageKindCount = 5;

struct Message {
  NodeId from;
  NodeId to;
  MessageKind kind = MessageKind::kModelUpload;
  std::uint64_t round = 0;
  std::vector<float> payload;
  // When a lossy codec was applied, `payload` holds the *decoded* values
  // the receiver observes and this field holds the encoded size actually
  // sent over the wire. 0 means uncompressed (size derived from payload).
  std::size_t encoded_bytes = 0;
  // The codec's actual output when encoded_bytes > 0, carried so a real
  // wire transport ships the encoded bytes without re-encoding (and the
  // receiver's decode is bit-identical to what the sender observed).
  // Simulation paths may leave it empty: accounting only needs the size.
  std::vector<std::uint8_t> encoded;
  // Wire-encoding format tag stamped into the frame header's format byte
  // when encoded_bytes > 0 (fl::kWireFormat*). 0 = raw float32 / legacy
  // session-codec framing.
  std::uint8_t wire_format = 0;
  // kHello only: the wire-encoding spec this peer wants its broadcasts
  // in, carried in the frame header's reserved bytes (<= 18 ASCII chars;
  // empty = lossless f32 default).
  std::string hello_encoding;
};

// Raw serialized payload size (length prefix + floats), ignoring any codec.
std::size_t payload_bytes(const Message& message);

// Wire size in bytes of the framed message: fixed header + trailer, plus
// the length-prefixed float payload, or the encoded bytes when a codec was
// applied. This is both what the simulation bills and what
// transport::FrameCodec::encode emits (contract-checked there). Contract:
// a nonzero encoded_bytes requires a non-empty decoded payload or the
// encoded buffer itself — an "encoded" size on a message that carries
// nothing is always an accounting bug.
std::size_t wire_size(const Message& message);

// Frame layout budget shared with transport/frame.h: a fixed binary
// header (magic, version, kind, payload format, round, node ids, payload
// length) and a CRC32C trailer. Their sum is the per-message overhead the
// simulation has always billed as `kMessageHeaderBytes`.
inline constexpr std::size_t kFrameHeaderBytes = 60;
inline constexpr std::size_t kFrameTrailerBytes = 4;
inline constexpr std::size_t kMessageHeaderBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;
static_assert(kMessageHeaderBytes == 64,
              "the 64-byte per-message budget is baked into recorded "
              "traffic numbers; widen only with a protocol version bump");

const char* to_string(MessageKind kind);

}  // namespace fedms::net
