// Round-synchronous simulated network.
//
// The FEEL protocol is synchronous (the paper's clients are synchronized
// across the three stages), so the network is modelled as a per-round
// message bus: senders `send()` during a stage, receivers `drain_inbox()`
// at the stage boundary. The bus keeps cumulative traffic statistics split
// by direction — the quantity behind the paper's claim that sparse
// uploading costs K model-transfers versus K×P for upload-to-all.
//
// Failure injection: an optional uniform loss rate drops messages at send
// time (deterministically, from the bus's own RNG), which the robustness
// tests use to check that aggregation degrades gracefully when uploads go
// missing.
//
// Drop attribution contract (shared with the event-driven runtime and the
// transport telemetry so the counters stay comparable): a lost message is
// billed to the *sender's* direction — client-origin drops land in
// `uplink().dropped_messages`, PS-origin drops in `downlink()` — and a
// dropped message contributes neither to `messages` nor `bytes`.
// Send-side omissions (a PS "forgetting" to send; see runtime::FaultPlan)
// are a different fault: the message never reached the link, so they are
// counted separately and never appear as link drops.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "net/message.h"

namespace fedms::net {

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped_messages = 0;

  TrafficStats& operator+=(const TrafficStats& other);
};

class SimNetwork {
 public:
  SimNetwork() : rng_(0) {}
  explicit SimNetwork(core::Rng rng) : rng_(rng) {}

  // Fraction of messages dropped at send time (failure injection).
  void set_loss_rate(double rate);
  double loss_rate() const { return loss_rate_; }

  // Queues a message for its destination (unless dropped) and records
  // traffic. Payloads are moved, not copied.
  void send(Message message);

  // Removes and returns every queued message addressed to `node`, in send
  // order.
  std::vector<Message> drain_inbox(const NodeId& node);

  // Number of queued (undelivered) messages across all inboxes.
  std::size_t pending_count() const;

  // Cumulative stats by direction.
  const TrafficStats& uplink() const { return uplink_; }      // client -> PS
  const TrafficStats& downlink() const { return downlink_; }  // PS -> client
  TrafficStats total() const;
  void reset_stats();

  // The direction a message from `sender` is billed to (uplink for
  // client-origin traffic, downlink for PS-origin) — the single attribution
  // rule for delivered bytes *and* drops.
  static TrafficStats& direction_for(const NodeId& sender,
                                     TrafficStats& uplink,
                                     TrafficStats& downlink);

 private:
  std::map<NodeId, std::vector<Message>> inboxes_;
  TrafficStats uplink_;
  TrafficStats downlink_;
  double loss_rate_ = 0.0;
  core::Rng rng_;
};

}  // namespace fedms::net
