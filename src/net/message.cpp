#include "net/message.h"

#include "core/contracts.h"

namespace fedms::net {

std::size_t payload_bytes(const Message& message) {
  return sizeof(std::uint64_t) + sizeof(float) * message.payload.size();
}

std::size_t wire_size(const Message& message) {
  if (message.encoded_bytes > 0) {
    // An encoded size must come with data: either the decoded values or
    // the encoded bytes themselves (stateful wire payloads are decoded
    // lazily by the receiver's channel, so the payload may still be
    // empty while the encoded buffer rides along).
    FEDMS_EXPECTS(!message.payload.empty() || !message.encoded.empty());
    return kMessageHeaderBytes + message.encoded_bytes;
  }
  return kMessageHeaderBytes + payload_bytes(message);
}

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kModelUpload:
      return "upload";
    case MessageKind::kModelBroadcast:
      return "broadcast";
    case MessageKind::kRetryRequest:
      return "retry";
    case MessageKind::kHello:
      return "hello";
    case MessageKind::kRoundSync:
      return "roundsync";
  }
  return "?";
}

}  // namespace fedms::net
