#include "net/message.h"

namespace fedms::net {

std::size_t wire_size(const Message& message) {
  if (message.encoded_bytes > 0)
    return kMessageHeaderBytes + message.encoded_bytes;
  return kMessageHeaderBytes + sizeof(std::uint64_t) +
         sizeof(float) * message.payload.size();
}

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kModelUpload:
      return "upload";
    case MessageKind::kModelBroadcast:
      return "broadcast";
  }
  return "?";
}

}  // namespace fedms::net
