#include "net/sim_network.h"

#include "core/contracts.h"

namespace fedms::net {

TrafficStats& TrafficStats::operator+=(const TrafficStats& other) {
  messages += other.messages;
  bytes += other.bytes;
  dropped_messages += other.dropped_messages;
  return *this;
}

void SimNetwork::set_loss_rate(double rate) {
  FEDMS_EXPECTS(rate >= 0.0 && rate < 1.0);
  loss_rate_ = rate;
}

TrafficStats& SimNetwork::direction_for(const NodeId& sender,
                                        TrafficStats& uplink,
                                        TrafficStats& downlink) {
  return sender.kind == NodeKind::kClient ? uplink : downlink;
}

void SimNetwork::send(Message message) {
  TrafficStats& direction = direction_for(message.from, uplink_, downlink_);
  if (loss_rate_ > 0.0 && rng_.bernoulli(loss_rate_)) {
    ++direction.dropped_messages;
    return;
  }
  direction.messages += 1;
  direction.bytes += wire_size(message);
  inboxes_[message.to].push_back(std::move(message));
}

std::vector<Message> SimNetwork::drain_inbox(const NodeId& node) {
  const auto it = inboxes_.find(node);
  if (it == inboxes_.end()) return {};
  std::vector<Message> messages = std::move(it->second);
  inboxes_.erase(it);
  return messages;
}

std::size_t SimNetwork::pending_count() const {
  std::size_t n = 0;
  for (const auto& [node, inbox] : inboxes_) n += inbox.size();
  return n;
}

TrafficStats SimNetwork::total() const {
  TrafficStats stats = uplink_;
  stats += downlink_;
  return stats;
}

void SimNetwork::reset_stats() {
  uplink_ = TrafficStats{};
  downlink_ = TrafficStats{};
}

}  // namespace fedms::net
