#include "net/latency.h"

#include <algorithm>

#include "core/contracts.h"

namespace fedms::net {

void LatencyModel::set_link(const NodeId& node, LinkModel link) {
  FEDMS_EXPECTS(link.bandwidth_bytes_per_sec > 0.0);
  FEDMS_EXPECTS(link.rtt_sec >= 0.0);
  links_[node] = link;
}

const LinkModel& LatencyModel::link_for(const NodeId& node) const {
  const auto it = links_.find(node);
  return it == links_.end() ? default_link_ : it->second;
}

double LatencyModel::transfer_seconds(std::uint64_t bytes) const {
  FEDMS_EXPECTS(default_link_.bandwidth_bytes_per_sec > 0.0);
  return default_link_.rtt_sec / 2.0 +
         double(bytes) / default_link_.bandwidth_bytes_per_sec;
}

double LatencyModel::transfer_seconds(std::uint64_t bytes,
                                      const NodeId& node) const {
  const LinkModel& link = link_for(node);
  return link.rtt_sec / 2.0 + double(bytes) / link.bandwidth_bytes_per_sec;
}

double LatencyModel::stage_seconds(
    const std::vector<Message>& messages) const {
  std::map<NodeId, std::uint64_t> bytes_per_link;
  for (const Message& m : messages) bytes_per_link[m.from] += wire_size(m);
  double worst = 0.0;
  for (const auto& [node, bytes] : bytes_per_link)
    worst = std::max(worst, transfer_seconds(bytes, node));
  return worst;
}

}  // namespace fedms::net
