#include "net/node_id.h"

namespace fedms::net {

std::string to_string(const NodeId& id) {
  return (id.kind == NodeKind::kClient ? "client#" : "server#") +
         std::to_string(id.index);
}

}  // namespace fedms::net
