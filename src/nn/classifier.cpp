#include "nn/classifier.h"

#include "core/contracts.h"
#include "tensor/ops.h"

namespace fedms::nn {

Classifier::Classifier(std::unique_ptr<Sequential> net)
    : net_(std::move(net)) {
  FEDMS_EXPECTS(net_ != nullptr);
}

double Classifier::compute_gradients(const Tensor& inputs,
                                     const std::vector<std::size_t>& labels) {
  net_->zero_grads();
  const Tensor logits = net_->forward(inputs, /*training=*/true);
  const double loss = loss_.forward(logits, labels);
  net_->backward(loss_.backward());
  return loss;
}

std::vector<std::size_t> Classifier::predict(const Tensor& inputs) {
  const Tensor logits = net_->forward(inputs, /*training=*/false);
  return tensor::argmax_rows(logits);
}

EvalResult Classifier::evaluate(const Tensor& inputs,
                                const std::vector<std::size_t>& labels) {
  FEDMS_EXPECTS(labels.size() == inputs.dim(0));
  const Tensor logits = net_->forward(inputs, /*training=*/false);
  SoftmaxCrossEntropy eval_loss;  // local: do not disturb training caches
  EvalResult result;
  result.loss = eval_loss.forward(logits, labels);
  const auto predictions = tensor::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (predictions[i] == labels[i]) ++correct;
  result.sample_count = labels.size();
  result.accuracy =
      labels.empty() ? 0.0 : double(correct) / double(labels.size());
  return result;
}

std::vector<ParamRef> Classifier::params() {
  std::vector<ParamRef> refs;
  net_->collect_params(refs);
  return refs;
}

}  // namespace fedms::nn
