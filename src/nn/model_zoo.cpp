#include "nn/model_zoo.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv_layers.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace fedms::nn {

std::unique_ptr<Sequential> make_mlp(std::size_t in_features,
                                     const std::vector<std::size_t>& hidden,
                                     std::size_t classes, core::Rng& rng) {
  FEDMS_EXPECTS(in_features > 0 && classes > 0);
  auto net = std::make_unique<Sequential>();
  std::size_t prev = in_features;
  for (const std::size_t width : hidden) {
    net->emplace<Linear>(prev, width, rng);
    net->emplace<ReLU>();
    prev = width;
  }
  net->emplace<Linear>(prev, classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_logistic(std::size_t in_features,
                                          std::size_t classes,
                                          core::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Linear>(in_features, classes, rng);
  return net;
}

LayerPtr make_inverted_residual(std::size_t in_channels,
                                std::size_t out_channels,
                                std::size_t expansion, std::size_t stride,
                                core::Rng& rng) {
  FEDMS_EXPECTS(expansion >= 1 && (stride == 1 || stride == 2));
  const std::size_t expanded = in_channels * expansion;
  auto block = std::make_unique<Sequential>();
  if (expansion > 1) {
    block->emplace<Conv2d>(in_channels, expanded, /*kernel=*/1, /*stride=*/1,
                           /*padding=*/0, rng, /*with_bias=*/false);
    block->emplace<BatchNorm2d>(expanded);
    block->emplace<ReLU6>();
  }
  block->emplace<DepthwiseConv2d>(expanded, /*kernel=*/3, stride,
                                  /*padding=*/1, rng, /*with_bias=*/false);
  block->emplace<BatchNorm2d>(expanded);
  block->emplace<ReLU6>();
  // Linear bottleneck: no activation after the projection.
  block->emplace<Conv2d>(expanded, out_channels, /*kernel=*/1, /*stride=*/1,
                         /*padding=*/0, rng, /*with_bias=*/false);
  block->emplace<BatchNorm2d>(out_channels);
  if (stride == 1 && in_channels == out_channels)
    return std::make_unique<Residual>(std::move(block));
  return block;
}

std::unique_ptr<Sequential> make_lenet_tiny(std::size_t in_channels,
                                            std::size_t image_size,
                                            std::size_t classes,
                                            core::Rng& rng) {
  FEDMS_EXPECTS(in_channels > 0 && classes > 0);
  FEDMS_EXPECTS(image_size % 4 == 0 && image_size >= 4);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(in_channels, 6, /*kernel=*/3, /*stride=*/1,
                       /*padding=*/1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Conv2d>(6, 12, /*kernel=*/3, /*stride=*/1, /*padding=*/1,
                       rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Flatten>();
  const std::size_t flat = 12 * (image_size / 4) * (image_size / 4);
  net->emplace<Linear>(flat, 24, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(24, classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_mobilenet_v2_tiny(
    const MobileNetV2Config& config, core::Rng& rng) {
  FEDMS_EXPECTS(config.in_channels > 0 && config.classes > 0);
  FEDMS_EXPECTS(!config.stages.empty());
  auto net = std::make_unique<Sequential>();
  // Stem: 3x3 conv, stride 1 (inputs here are already small).
  net->emplace<Conv2d>(config.in_channels, config.stem_channels,
                       /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng,
                       /*with_bias=*/false);
  net->emplace<BatchNorm2d>(config.stem_channels);
  net->emplace<ReLU6>();
  std::size_t channels = config.stem_channels;
  for (const auto& [out_channels, stride] : config.stages) {
    net->add(make_inverted_residual(channels, out_channels, config.expansion,
                                    stride, rng));
    channels = out_channels;
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(channels, config.classes, rng);
  return net;
}

}  // namespace fedms::nn
