// Inverted dropout: during training, each activation is zeroed with
// probability p and survivors are scaled by 1/(1−p) so evaluation needs no
// rescaling. Draws from its own deterministic RNG stream, keeping runs
// reproducible per seed.
#pragma once

#include "core/rng.h"
#include "nn/layer.h"

namespace fedms::nn {

class Dropout final : public Layer {
 public:
  Dropout(double drop_probability, core::Rng rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  double drop_probability() const { return drop_probability_; }

 private:
  double drop_probability_;
  core::Rng rng_;
  Tensor mask_;  // scale factors from the last training forward
  bool last_forward_training_ = false;
};

}  // namespace fedms::nn
