// Model factories.
//
// The paper trains MobileNet V2 on CIFAR-10; this repo provides a
// width-scaled MobileNet-V2-style network (inverted residual blocks with
// depthwise-separable convolutions, ReLU6, linear bottlenecks) that is
// trainable on a single CPU core, plus an MLP and a multinomial logistic
// model used by the fast figure benches and the convex theory experiments.
// The federated layer is model-agnostic (it sees a flat ℝ^d vector), so the
// choice of model changes wall-clock, not Byzantine dynamics.
#pragma once

#include <memory>
#include <vector>

#include "core/rng.h"
#include "nn/sequential.h"

namespace fedms::nn {

// MLP: in -> hidden[0] -> ... -> classes with ReLU between linear layers.
std::unique_ptr<Sequential> make_mlp(std::size_t in_features,
                                     const std::vector<std::size_t>& hidden,
                                     std::size_t classes, core::Rng& rng);

// Multinomial logistic regression (single linear layer). With L2 weight
// decay its objective is strongly convex — the Theorem-1 assumptions.
std::unique_ptr<Sequential> make_logistic(std::size_t in_features,
                                          std::size_t classes,
                                          core::Rng& rng);

// Configuration for the scaled MobileNet V2.
struct MobileNetV2Config {
  std::size_t in_channels = 3;
  std::size_t image_size = 8;     // square input
  std::size_t classes = 10;
  std::size_t stem_channels = 8;  // first conv width
  std::size_t expansion = 2;      // inverted-residual expansion factor t
  // Per-stage (output_channels, stride); residual skip is applied when
  // stride == 1 and channels are preserved, as in the original network.
  std::vector<std::pair<std::size_t, std::size_t>> stages = {
      {8, 1}, {16, 2}, {16, 1}};
};

std::unique_ptr<Sequential> make_mobilenet_v2_tiny(
    const MobileNetV2Config& config, core::Rng& rng);

// LeNet-style classic CNN: two conv+ReLU+maxpool stages, then two fully
// connected layers. The second CNN family in the zoo (standard conv +
// pooling, no normalization), complementing MobileNet's depthwise blocks.
// `image_size` must be divisible by 4 (two 2x2 pools).
std::unique_ptr<Sequential> make_lenet_tiny(std::size_t in_channels,
                                            std::size_t image_size,
                                            std::size_t classes,
                                            core::Rng& rng);

// One MobileNet V2 inverted-residual block: 1x1 expand + BN + ReLU6,
// 3x3 depthwise (stride s) + BN + ReLU6, 1x1 project + BN (linear).
// Wrapped in a Residual when stride == 1 and in_channels == out_channels.
LayerPtr make_inverted_residual(std::size_t in_channels,
                                std::size_t out_channels,
                                std::size_t expansion, std::size_t stride,
                                core::Rng& rng);

}  // namespace fedms::nn
