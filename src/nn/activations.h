// Pointwise activation layers. ReLU6 is the activation used by MobileNet V2.
#pragma once

#include "nn/layer.h"

namespace fedms::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class ReLU6 final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU6"; }

 private:
  Tensor cached_input_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace fedms::nn
