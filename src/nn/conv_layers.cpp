#include "nn/conv_layers.h"

#include <cmath>

#include "tensor/ops.h"

namespace fedms::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               core::Rng& rng, bool with_bias, ConvBackend backend)
    : spec_{stride, padding},
      with_bias_(with_bias),
      backend_(backend == ConvBackend::kAuto ? ConvBackend::kIm2col
                                             : backend),
      weight_(Tensor::randn(
          {out_channels, in_channels, kernel, kernel}, rng, 0.0f,
          std::sqrt(2.0f / float(in_channels * kernel * kernel)))),
      bias_(with_bias ? Tensor({out_channels}) : Tensor()),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_(with_bias ? Tensor({out_channels}) : Tensor()) {
  FEDMS_EXPECTS(in_channels > 0 && out_channels > 0 && kernel > 0);
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  return backend_ == ConvBackend::kIm2col
             ? tensor::conv2d_forward_im2col(input, weight_, bias_, spec_)
             : tensor::conv2d_forward(input, weight_, bias_, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(cached_input_.numel() > 0);
  if (backend_ == ConvBackend::kIm2col) {
    // dW/db accumulate directly into the layer's gradient buffers — no
    // temporary gradient tensors on the hot path.
    return tensor::conv2d_backward_im2col_acc(cached_input_, weight_,
                                              grad_output, spec_,
                                              grad_weight_, grad_bias_);
  }
  auto grads = tensor::conv2d_backward(cached_input_, weight_, grad_output,
                                       spec_);
  tensor::add_inplace(grad_weight_, grads.grad_weight);
  if (with_bias_) tensor::add_inplace(grad_bias_, grads.grad_bias);
  return std::move(grads.grad_input);
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weight_, &grad_weight_, "conv2d.weight"});
  if (with_bias_) out.push_back({&bias_, &grad_bias_, "conv2d.bias"});
}

DepthwiseConv2d::DepthwiseConv2d(std::size_t channels, std::size_t kernel,
                                 std::size_t stride, std::size_t padding,
                                 core::Rng& rng, bool with_bias)
    : spec_{stride, padding},
      with_bias_(with_bias),
      weight_(Tensor::randn({channels, 1, kernel, kernel}, rng, 0.0f,
                            std::sqrt(2.0f / float(kernel * kernel)))),
      bias_(with_bias ? Tensor({channels}) : Tensor()),
      grad_weight_({channels, 1, kernel, kernel}),
      grad_bias_(with_bias ? Tensor({channels}) : Tensor()) {
  FEDMS_EXPECTS(channels > 0 && kernel > 0);
}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  return tensor::depthwise_conv2d_forward(input, weight_, bias_, spec_);
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(cached_input_.numel() > 0);
  auto grads = tensor::depthwise_conv2d_backward(cached_input_, weight_,
                                                 grad_output, spec_);
  tensor::add_inplace(grad_weight_, grads.grad_weight);
  if (with_bias_) tensor::add_inplace(grad_bias_, grads.grad_bias);
  return std::move(grads.grad_input);
}

void DepthwiseConv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weight_, &grad_weight_, "dwconv.weight"});
  if (with_bias_) out.push_back({&bias_, &grad_bias_, "dwconv.bias"});
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  return tensor::global_avg_pool_forward(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(!cached_input_shape_.empty());
  return tensor::global_avg_pool_backward(grad_output, cached_input_shape_);
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  FEDMS_EXPECTS(input.rank() >= 2);
  cached_input_shape_ = input.shape();
  return input.reshaped({input.dim(0), input.numel() / input.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(!cached_input_shape_.empty());
  return grad_output.reshaped(cached_input_shape_);
}

}  // namespace fedms::nn
