// Model checkpointing: saves and restores a model's full state (trainable
// parameters and buffers) with per-tensor names and shapes, so loading into
// a mismatched architecture fails with a diagnostic instead of silently
// scrambling weights.
//
// Format: "FMCK" | u64 entry_count | entries, each
//   u64 name_len | name bytes | tensor (tensor/serialize.h format)
#pragma once

#include <string>

#include "nn/layer.h"

namespace fedms::nn {

void save_checkpoint(const std::string& path, Layer& model);

// Throws std::runtime_error on I/O failure, malformed files, or any
// name/shape mismatch with `model`'s current architecture.
void load_checkpoint(const std::string& path, Layer& model);

}  // namespace fedms::nn
