// Layer abstraction with explicit forward/backward.
//
// There is deliberately no autograd tape: every layer caches what its own
// backward needs and implements the chain rule by hand. For a library whose
// purpose is simulating *federated aggregation* this keeps the training
// substrate small, fully inspectable, and easy to verify with finite
// differences (see tests/nn_gradcheck_test.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedms::nn {

using tensor::Tensor;

// Non-owning view of one trainable parameter and its gradient accumulator.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output, caching whatever backward() needs.
  // `training` toggles behaviours like batch-norm statistics.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  // Given dLoss/dOutput, accumulates parameter gradients (+=) and returns
  // dLoss/dInput. Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Appends this layer's trainable parameters.
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

  // Appends non-trainable persistent state (e.g. batch-norm running stats)
  // that is still part of the model payload exchanged in federated learning.
  virtual void collect_buffers(std::vector<Tensor*>& out) { (void)out; }

  virtual std::string name() const = 0;

  // Zeroes every gradient accumulator exposed by collect_params().
  void zero_grads();
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace fedms::nn
