#include "nn/activations.h"

#include <algorithm>
#include <cmath>

namespace fedms::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) p[i] = std::max(0.0f, p[i]);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(grad_output.same_shape(cached_input_));
  Tensor g = grad_output;
  float* pg = g.data();
  const float* px = cached_input_.data();
  for (std::size_t i = 0; i < g.numel(); ++i)
    if (px[i] <= 0.0f) pg[i] = 0.0f;
  return g;
}

Tensor ReLU6::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    p[i] = std::clamp(p[i], 0.0f, 6.0f);
  return out;
}

Tensor ReLU6::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(grad_output.same_shape(cached_input_));
  Tensor g = grad_output;
  float* pg = g.data();
  const float* px = cached_input_.data();
  for (std::size_t i = 0; i < g.numel(); ++i)
    if (px[i] <= 0.0f || px[i] >= 6.0f) pg[i] = 0.0f;
  return g;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) p[i] = std::tanh(p[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(grad_output.same_shape(cached_output_));
  Tensor g = grad_output;
  float* pg = g.data();
  const float* py = cached_output_.data();
  for (std::size_t i = 0; i < g.numel(); ++i) pg[i] *= 1.0f - py[i] * py[i];
  return g;
}

}  // namespace fedms::nn
