#include "nn/batchnorm.h"

#include <cmath>

namespace fedms::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::ones({channels})),
      beta_({channels}),
      grad_gamma_({channels}),
      grad_beta_({channels}),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})),
      cached_inv_std_({channels}) {
  FEDMS_EXPECTS(channels > 0);
  FEDMS_EXPECTS(eps > 0.0f);
  FEDMS_EXPECTS(momentum >= 0.0f && momentum <= 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  FEDMS_EXPECTS(input.rank() == 4 && input.dim(1) == channels_);
  const std::size_t N = input.dim(0), C = channels_, H = input.dim(2),
                    W = input.dim(3);
  const std::size_t m = N * H * W;
  FEDMS_EXPECTS(m > 0);
  Tensor out(input.shape());
  cached_training_ = training;

  // Each (n, c) pair is one contiguous H*W plane in NCHW storage; all the
  // loops below walk planes through raw pointers instead of 4-index at().
  const std::size_t plane = H * W;
  const float* in = input.data();
  float* o = out.data();

  if (training) {
    // The xhat cache is reused across steps once its shape stabilizes —
    // no per-forward allocation in steady state.
    if (!cached_xhat_.same_shape(input)) cached_xhat_ = Tensor(input.shape());
    float* xh = cached_xhat_.data();
    for (std::size_t c = 0; c < C; ++c) {
      double mean = 0.0;
      for (std::size_t n = 0; n < N; ++n) {
        const float* p = in + (n * C + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) mean += p[i];
      }
      mean /= double(m);
      double var = 0.0;
      for (std::size_t n = 0; n < N; ++n) {
        const float* p = in + (n * C + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          const double d = p[i] - mean;
          var += d * d;
        }
      }
      var /= double(m);  // biased variance, as in training-time BN
      const float inv_std = 1.0f / std::sqrt(float(var) + eps_);
      cached_inv_std_[c] = inv_std;
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * float(mean);
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * float(var);
      const float g = gamma_[c], b = beta_[c], mu = float(mean);
      for (std::size_t n = 0; n < N; ++n) {
        const std::size_t base = (n * C + c) * plane;
        const float* p = in + base;
        float* xrow = xh + base;
        float* orow = o + base;
        for (std::size_t i = 0; i < plane; ++i) {
          const float xhat = (p[i] - mu) * inv_std;
          xrow[i] = xhat;
          orow[i] = g * xhat + b;
        }
      }
    }
  } else {
    for (std::size_t c = 0; c < C; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float g = gamma_[c], b = beta_[c], mu = running_mean_[c];
      for (std::size_t n = 0; n < N; ++n) {
        const std::size_t base = (n * C + c) * plane;
        const float* p = in + base;
        float* orow = o + base;
        for (std::size_t i = 0; i < plane; ++i)
          orow[i] = g * (p[i] - mu) * inv_std + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(cached_training_);
  FEDMS_EXPECTS(grad_output.same_shape(cached_xhat_));
  const std::size_t N = grad_output.dim(0), C = channels_,
                    H = grad_output.dim(2), W = grad_output.dim(3);
  const double m = double(N * H * W);
  const std::size_t plane = H * W;
  Tensor grad_input(grad_output.shape());
  const float* dy_base = grad_output.data();
  const float* xh_base = cached_xhat_.data();
  float* dx_base = grad_input.data();

  for (std::size_t c = 0; c < C; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < N; ++n) {
      const std::size_t base = (n * C + c) * plane;
      const float* dy = dy_base + base;
      const float* xh = xh_base + base;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += double(dy[i]) * xh[i];
      }
    }
    grad_beta_[c] += float(sum_dy);
    grad_gamma_[c] += float(sum_dy_xhat);
    const double k = double(gamma_[c]) * cached_inv_std_[c];
    const double mean_dy = sum_dy / m;
    const double mean_dy_xhat = sum_dy_xhat / m;
    for (std::size_t n = 0; n < N; ++n) {
      const std::size_t base = (n * C + c) * plane;
      const float* dy = dy_base + base;
      const float* xh = xh_base + base;
      float* dx = dx_base + base;
      for (std::size_t i = 0; i < plane; ++i)
        dx[i] = float(k * (dy[i] - mean_dy - double(xh[i]) * mean_dy_xhat));
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&gamma_, &grad_gamma_, "bn.gamma"});
  out.push_back({&beta_, &grad_beta_, "bn.beta"});
}

void BatchNorm2d::collect_buffers(std::vector<Tensor*>& out) {
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

}  // namespace fedms::nn
