#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.h"

namespace fedms::nn {

namespace {

constexpr char kMagic[4] = {'F', 'M', 'C', 'K'};

struct Entry {
  std::string name;
  tensor::Tensor* value;
};

// Parameters (by their declared names) followed by buffers.
std::vector<Entry> state_entries(Layer& model) {
  std::vector<Entry> entries;
  std::vector<ParamRef> refs;
  model.collect_params(refs);
  for (std::size_t i = 0; i < refs.size(); ++i)
    entries.push_back({refs[i].name + "#" + std::to_string(i),
                       refs[i].value});
  std::vector<tensor::Tensor*> buffers;
  model.collect_buffers(buffers);
  for (std::size_t i = 0; i < buffers.size(); ++i)
    entries.push_back({"buffer#" + std::to_string(i), buffers[i]});
  return entries;
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("fedms: truncated checkpoint");
  return v;
}

}  // namespace

void save_checkpoint(const std::string& path, Layer& model) {
  std::ofstream os(path, std::ios::binary);
  if (!os)
    throw std::runtime_error("fedms: cannot open checkpoint for write: " +
                             path);
  os.write(kMagic, sizeof kMagic);
  const auto entries = state_entries(model);
  write_u64(os, entries.size());
  for (const auto& entry : entries) {
    write_u64(os, entry.name.size());
    os.write(entry.name.data(),
             static_cast<std::streamsize>(entry.name.size()));
    tensor::write_tensor(os, *entry.value);
  }
  if (!os) throw std::runtime_error("fedms: checkpoint write failed");
}

void load_checkpoint(const std::string& path, Layer& model) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("fedms: cannot open checkpoint for read: " +
                             path);
  char magic[4] = {};
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("fedms: bad checkpoint magic");

  const auto entries = state_entries(model);
  const std::uint64_t count = read_u64(is);
  if (count != entries.size())
    throw std::runtime_error(
        "fedms: checkpoint entry count mismatch (file has " +
        std::to_string(count) + ", model has " +
        std::to_string(entries.size()) + ")");
  for (const auto& entry : entries) {
    const std::uint64_t name_len = read_u64(is);
    if (name_len > 4096)
      throw std::runtime_error("fedms: implausible checkpoint name");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) throw std::runtime_error("fedms: truncated checkpoint name");
    if (name != entry.name)
      throw std::runtime_error("fedms: checkpoint entry '" + name +
                               "' does not match model entry '" +
                               entry.name + "'");
    tensor::Tensor loaded = tensor::read_tensor(is);
    if (loaded.shape() != entry.value->shape())
      throw std::runtime_error("fedms: shape mismatch for '" + name + "'");
    *entry.value = std::move(loaded);
  }
}

}  // namespace fedms::nn
