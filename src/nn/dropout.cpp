#include "nn/dropout.h"

#include "tensor/ops.h"

namespace fedms::nn {

Dropout::Dropout(double drop_probability, core::Rng rng)
    : drop_probability_(drop_probability), rng_(rng) {
  FEDMS_EXPECTS(drop_probability >= 0.0 && drop_probability < 1.0);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_forward_training_ = training;
  if (!training || drop_probability_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  const float keep_scale =
      static_cast<float>(1.0 / (1.0 - drop_probability_));
  Tensor out = input;
  float* po = out.data();
  float* pm = mask_.data();
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const float scale = rng_.bernoulli(drop_probability_) ? 0.0f : keep_scale;
    pm[i] = scale;
    po[i] *= scale;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_forward_training_ || drop_probability_ == 0.0)
    return grad_output;
  FEDMS_EXPECTS(grad_output.same_shape(mask_));
  return tensor::mul(grad_output, mask_);
}

}  // namespace fedms::nn
