// Spatial pooling layers (NCHW).
#pragma once

#include "nn/layer.h"

namespace fedms::nn {

// Max pooling with square window; backward routes the gradient to the
// argmax tap of each window (first on ties).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;  // 0 at construction means stride = kernel
  tensor::Shape cached_input_shape_;
  std::vector<std::size_t> cached_argmax_;  // flat input index per output
};

// Average pooling with square window; backward spreads uniformly.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  tensor::Shape cached_input_shape_;
};

}  // namespace fedms::nn
