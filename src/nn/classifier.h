// Classifier: a network plus a softmax-cross-entropy head, exposing the
// train/eval operations the federated `Client` drives.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace fedms::nn {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;  // fraction in [0, 1]
  std::size_t sample_count = 0;
};

class Classifier {
 public:
  explicit Classifier(std::unique_ptr<Sequential> net);

  // Zeroes gradients, then forward + loss + backward on one mini-batch.
  // Returns the mean batch loss. Gradients are left in the accumulators for
  // the optimizer to consume.
  double compute_gradients(const Tensor& inputs,
                           const std::vector<std::size_t>& labels);

  // Forward in eval mode; returns per-row predicted class indices.
  std::vector<std::size_t> predict(const Tensor& inputs);

  // Loss and accuracy over a labelled batch (eval mode, no gradients).
  EvalResult evaluate(const Tensor& inputs,
                      const std::vector<std::size_t>& labels);

  Sequential& net() { return *net_; }
  std::vector<ParamRef> params();

 private:
  std::unique_ptr<Sequential> net_;
  SoftmaxCrossEntropy loss_;
};

}  // namespace fedms::nn
