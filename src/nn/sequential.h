// Layer composition: Sequential chains layers; Residual wraps an inner layer
// with an identity skip connection (the shape-preserving case MobileNet V2's
// inverted-residual blocks use when stride == 1 and channels match).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace fedms::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  void add(LayerPtr layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  std::string name() const override { return "Sequential"; }

 private:
  std::vector<LayerPtr> layers_;
};

// y = inner(x) + x. The inner layer must preserve shape.
class Residual final : public Layer {
 public:
  explicit Residual(LayerPtr inner);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  std::string name() const override { return "Residual"; }

 private:
  LayerPtr inner_;
};

}  // namespace fedms::nn
