#include "nn/pooling.h"

#include <limits>

#include "tensor/conv.h"

namespace fedms::nn {

namespace {

std::size_t pool_out(std::size_t in, std::size_t kernel,
                     std::size_t stride) {
  return tensor::conv_out_size(in, kernel, stride, /*padding=*/0);
}

}  // namespace

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  FEDMS_EXPECTS(kernel > 0);
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  FEDMS_EXPECTS(input.rank() == 4);
  const std::size_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
                    W = input.dim(3);
  const std::size_t Hout = pool_out(H, kernel_, stride_);
  const std::size_t Wout = pool_out(W, kernel_, stride_);
  cached_input_shape_ = input.shape();
  Tensor out({N, C, Hout, Wout});
  cached_argmax_.assign(out.numel(), 0);
  std::size_t flat = 0;
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t c = 0; c < C; ++c)
      for (std::size_t ho = 0; ho < Hout; ++ho)
        for (std::size_t wo = 0; wo < Wout; ++wo, ++flat) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_index = 0;
          for (std::size_t kh = 0; kh < kernel_; ++kh)
            for (std::size_t kw = 0; kw < kernel_; ++kw) {
              const std::size_t h = ho * stride_ + kh;
              const std::size_t w = wo * stride_ + kw;
              const float v = input.at(n, c, h, w);
              if (v > best) {
                best = v;
                best_index = ((n * C + c) * H + h) * W + w;
              }
            }
          out[flat] = best;
          cached_argmax_[flat] = best_index;
        }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(!cached_input_shape_.empty());
  FEDMS_EXPECTS(grad_output.numel() == cached_argmax_.size());
  Tensor grad_input(cached_input_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    grad_input[cached_argmax_[i]] += grad_output[i];
  return grad_input;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  FEDMS_EXPECTS(kernel > 0);
}

Tensor AvgPool2d::forward(const Tensor& input, bool /*training*/) {
  FEDMS_EXPECTS(input.rank() == 4);
  const std::size_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
                    W = input.dim(3);
  const std::size_t Hout = pool_out(H, kernel_, stride_);
  const std::size_t Wout = pool_out(W, kernel_, stride_);
  cached_input_shape_ = input.shape();
  Tensor out({N, C, Hout, Wout});
  const float inv = 1.0f / float(kernel_ * kernel_);
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t c = 0; c < C; ++c)
      for (std::size_t ho = 0; ho < Hout; ++ho)
        for (std::size_t wo = 0; wo < Wout; ++wo) {
          double acc = 0.0;
          for (std::size_t kh = 0; kh < kernel_; ++kh)
            for (std::size_t kw = 0; kw < kernel_; ++kw)
              acc += input.at(n, c, ho * stride_ + kh, wo * stride_ + kw);
          out.at(n, c, ho, wo) = static_cast<float>(acc) * inv;
        }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(!cached_input_shape_.empty());
  FEDMS_EXPECTS(grad_output.rank() == 4);
  Tensor grad_input(cached_input_shape_);
  const std::size_t Hout = grad_output.dim(2), Wout = grad_output.dim(3);
  const float inv = 1.0f / float(kernel_ * kernel_);
  for (std::size_t n = 0; n < grad_output.dim(0); ++n)
    for (std::size_t c = 0; c < grad_output.dim(1); ++c)
      for (std::size_t ho = 0; ho < Hout; ++ho)
        for (std::size_t wo = 0; wo < Wout; ++wo) {
          const float g = grad_output.at(n, c, ho, wo) * inv;
          for (std::size_t kh = 0; kh < kernel_; ++kh)
            for (std::size_t kw = 0; kw < kernel_; ++kw)
              grad_input.at(n, c, ho * stride_ + kh, wo * stride_ + kw) += g;
        }
  return grad_input;
}

}  // namespace fedms::nn
