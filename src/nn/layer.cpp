#include "nn/layer.h"

namespace fedms::nn {

void Layer::zero_grads() {
  std::vector<ParamRef> refs;
  collect_params(refs);
  for (const auto& ref : refs) ref.grad->fill(0.0f);
}

}  // namespace fedms::nn
