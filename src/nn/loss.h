// Loss functions. SoftmaxCrossEntropy fuses row-softmax with negative
// log-likelihood so its backward is the numerically clean `p - onehot(y)`.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fedms::nn {

using tensor::Tensor;

class SoftmaxCrossEntropy {
 public:
  // logits: (batch x classes), labels: batch class indices.
  // Returns mean loss over the batch and caches for backward().
  double forward(const Tensor& logits, const std::vector<std::size_t>& labels);

  // dLoss/dLogits of the last forward (mean reduction).
  Tensor backward() const;

 private:
  Tensor cached_probs_;
  std::vector<std::size_t> cached_labels_;
};

// Mean squared error against a target tensor; used by the strongly convex
// theory experiments where exact optima are computable.
class MeanSquaredError {
 public:
  double forward(const Tensor& prediction, const Tensor& target);
  Tensor backward() const;

 private:
  Tensor cached_prediction_;
  Tensor cached_target_;
};

}  // namespace fedms::nn
