// Convolutional building blocks: Conv2d, DepthwiseConv2d, GlobalAvgPool,
// Flatten. Activations are NCHW.
#pragma once

#include "core/rng.h"
#include "nn/layer.h"
#include "tensor/conv.h"
#include "tensor/conv_im2col.h"

namespace fedms::nn {

// Convolution implementation choice. kDirect is the readable reference;
// kIm2col lowers onto the GEMM (several times faster; equivalence is
// covered by tests). kAuto currently always picks im2col.
enum class ConvBackend { kAuto, kDirect, kIm2col };

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         core::Rng& rng, bool with_bias = true,
         ConvBackend backend = ConvBackend::kAuto);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "Conv2d"; }
  ConvBackend backend() const { return backend_; }

 private:
  tensor::Conv2dSpec spec_;
  bool with_bias_;
  ConvBackend backend_;
  Tensor weight_;  // (out, in, k, k)
  Tensor bias_;    // (out) or empty
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

class DepthwiseConv2d final : public Layer {
 public:
  DepthwiseConv2d(std::size_t channels, std::size_t kernel,
                  std::size_t stride, std::size_t padding, core::Rng& rng,
                  bool with_bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "DepthwiseConv2d"; }

 private:
  tensor::Conv2dSpec spec_;
  bool with_bias_;
  Tensor weight_;  // (c, 1, k, k)
  Tensor bias_;
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

// (N, C, H, W) -> (N, C) spatial mean.
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape cached_input_shape_;
};

// (N, C, H, W) -> (N, C*H*W).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_input_shape_;
};

}  // namespace fedms::nn
