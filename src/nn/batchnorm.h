// Per-channel batch normalization for NCHW activations (the normalization
// MobileNet V2 uses after every convolution).
//
// Training mode normalizes with batch statistics and updates exponential
// running averages; evaluation mode normalizes with the running averages.
// The running statistics are model *buffers*: not trained by SGD but still
// part of the payload a federated client uploads, so they are exposed via
// collect_buffers() and included in the FL parameter flattening.
#pragma once

#include "nn/layer.h"

namespace fedms::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  std::string name() const override { return "BatchNorm2d"; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::size_t channels_;
  float eps_;
  float momentum_;
  Tensor gamma_;  // scale, (C)
  Tensor beta_;   // shift, (C)
  Tensor grad_gamma_;
  Tensor grad_beta_;
  Tensor running_mean_;  // buffers
  Tensor running_var_;
  // Caches from the last training-mode forward.
  Tensor cached_xhat_;     // normalized input, same shape as input
  Tensor cached_inv_std_;  // (C)
  bool cached_training_ = false;
};

}  // namespace fedms::nn
