// Fully connected layer: y = x W^T + b, x is (batch x in), W is (out x in).
#pragma once

#include "core/rng.h"
#include "nn/layer.h"

namespace fedms::nn {

class Linear final : public Layer {
 public:
  // He-initialized weight (suits the ReLU nets in the model zoo), zero bias.
  Linear(std::size_t in_features, std::size_t out_features, core::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weight_;       // (out x in)
  Tensor bias_;         // (out)
  Tensor grad_weight_;  // accumulators, += in backward
  Tensor grad_bias_;
  Tensor cached_input_;  // (batch x in) from the last forward
};

}  // namespace fedms::nn
