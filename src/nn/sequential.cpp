#include "nn/sequential.h"

#include "tensor/ops.h"

namespace fedms::nn {

void Sequential::add(LayerPtr layer) {
  FEDMS_EXPECTS(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

void Sequential::collect_buffers(std::vector<Tensor*>& out) {
  for (auto& layer : layers_) layer->collect_buffers(out);
}

Residual::Residual(LayerPtr inner) : inner_(std::move(inner)) {
  FEDMS_EXPECTS(inner_ != nullptr);
}

Tensor Residual::forward(const Tensor& input, bool training) {
  Tensor out = inner_->forward(input, training);
  FEDMS_EXPECTS(out.same_shape(input));
  tensor::add_inplace(out, input);
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor g = inner_->backward(grad_output);
  tensor::add_inplace(g, grad_output);  // identity branch
  return g;
}

void Residual::collect_params(std::vector<ParamRef>& out) {
  inner_->collect_params(out);
}

void Residual::collect_buffers(std::vector<Tensor*>& out) {
  inner_->collect_buffers(out);
}

}  // namespace fedms::nn
