#include "nn/linear.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace fedms::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               core::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng, 0.0f,
                            std::sqrt(2.0f / float(in_features)))),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  FEDMS_EXPECTS(in_features > 0 && out_features > 0);
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  FEDMS_EXPECTS(input.rank() == 2 && input.dim(1) == in_features_);
  cached_input_ = input;
  Tensor out = tensor::matmul_transB(input, weight_);  // (batch x out)
  tensor::add_bias_rows(out, bias_);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  FEDMS_EXPECTS(grad_output.rank() == 2 &&
                grad_output.dim(1) == out_features_);
  FEDMS_EXPECTS(cached_input_.numel() > 0);
  const std::size_t batch = grad_output.dim(0);
  // dW += dY^T X ; db += column-sums of dY ; dX = dY W. The gradients
  // accumulate straight into the parameter buffers (GEMM beta = 1 /
  // sum_rows_accumulate) — no temporary dW/db tensors on the hot path.
  tensor::gemm_tn(out_features_, in_features_, batch, grad_output.data(),
                  cached_input_.data(), grad_weight_.data(), 1.0f);
  tensor::sum_rows_accumulate(grad_output, grad_bias_);
  return tensor::matmul(grad_output, weight_);
}

void Linear::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weight_, &grad_weight_, "linear.weight"});
  out.push_back({&bias_, &grad_bias_, "linear.bias"});
}

}  // namespace fedms::nn
