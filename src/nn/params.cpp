#include "nn/params.h"

#include <cstring>

#include "core/contracts.h"

namespace fedms::nn {

namespace {

std::vector<ParamRef> param_refs(Layer& model) {
  std::vector<ParamRef> refs;
  model.collect_params(refs);
  return refs;
}

std::vector<Tensor*> buffer_refs(Layer& model) {
  std::vector<Tensor*> refs;
  model.collect_buffers(refs);
  return refs;
}

}  // namespace

std::size_t parameter_count(Layer& model) {
  std::size_t n = 0;
  for (const auto& ref : param_refs(model)) n += ref.value->numel();
  return n;
}

std::size_t state_count(Layer& model) {
  std::size_t n = parameter_count(model);
  for (const auto* buf : buffer_refs(model)) n += buf->numel();
  return n;
}

std::vector<float> flatten_params(Layer& model) {
  std::vector<float> flat;
  flat.reserve(parameter_count(model));
  for (const auto& ref : param_refs(model)) {
    const Tensor& t = *ref.value;
    flat.insert(flat.end(), t.data(), t.data() + t.numel());
  }
  return flat;
}

void load_params(Layer& model, const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (const auto& ref : param_refs(model)) {
    Tensor& t = *ref.value;
    FEDMS_EXPECTS(offset + t.numel() <= flat.size());
    std::memcpy(t.data(), flat.data() + offset, sizeof(float) * t.numel());
    offset += t.numel();
  }
  FEDMS_EXPECTS(offset == flat.size());
}

std::vector<float> flatten_grads(Layer& model) {
  std::vector<float> flat;
  flat.reserve(parameter_count(model));
  for (const auto& ref : param_refs(model)) {
    const Tensor& t = *ref.grad;
    flat.insert(flat.end(), t.data(), t.data() + t.numel());
  }
  return flat;
}

std::vector<float> flatten_state(Layer& model) {
  std::vector<float> flat = flatten_params(model);
  flat.reserve(state_count(model));
  for (const auto* buf : buffer_refs(model))
    flat.insert(flat.end(), buf->data(), buf->data() + buf->numel());
  return flat;
}

void load_state(Layer& model, const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (const auto& ref : param_refs(model)) {
    Tensor& t = *ref.value;
    FEDMS_EXPECTS(offset + t.numel() <= flat.size());
    std::memcpy(t.data(), flat.data() + offset, sizeof(float) * t.numel());
    offset += t.numel();
  }
  for (Tensor* buf : buffer_refs(model)) {
    FEDMS_EXPECTS(offset + buf->numel() <= flat.size());
    std::memcpy(buf->data(), flat.data() + offset,
                sizeof(float) * buf->numel());
    offset += buf->numel();
  }
  FEDMS_EXPECTS(offset == flat.size());
}

}  // namespace fedms::nn
