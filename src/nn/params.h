// Flattening between a model's structured parameters and the flat ℝ^d
// vector the federated-learning layer exchanges.
//
// The paper's algorithm and analysis operate on w ∈ ℝ^d; everything above
// `src/nn` (aggregators, attacks, trimmed-mean filter, network payloads)
// sees only `std::vector<float>`. `flatten_state`/`load_state` additionally
// include model buffers (batch-norm running stats) so the uploaded payload
// is the complete model, as in the paper's MobileNet setting.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace fedms::nn {

// Total number of trainable scalars.
std::size_t parameter_count(Layer& model);
// Total number of scalars including buffers.
std::size_t state_count(Layer& model);

// Trainable parameters -> flat vector (layer order, tensor order).
std::vector<float> flatten_params(Layer& model);
// Flat vector -> trainable parameters. Size must match parameter_count.
void load_params(Layer& model, const std::vector<float>& flat);

// Gradients -> flat vector, same ordering as flatten_params.
std::vector<float> flatten_grads(Layer& model);

// Parameters followed by buffers.
std::vector<float> flatten_state(Layer& model);
void load_state(Layer& model, const std::vector<float>& flat);

}  // namespace fedms::nn
