#include "nn/optimizer.h"

#include <cmath>

#include "core/contracts.h"
#include "tensor/ops.h"

namespace fedms::nn {

ConstantSchedule::ConstantSchedule(double lr) : lr_(lr) {
  FEDMS_EXPECTS(lr > 0.0);
}

InverseDecaySchedule::InverseDecaySchedule(double phi, double gamma)
    : phi_(phi), gamma_(gamma) {
  FEDMS_EXPECTS(phi > 0.0 && gamma > 0.0);
}

StepDecaySchedule::StepDecaySchedule(double base_lr, double factor,
                                     std::uint64_t every)
    : base_lr_(base_lr), factor_(factor), every_(every) {
  FEDMS_EXPECTS(base_lr > 0.0 && factor > 0.0 && every > 0);
}

double StepDecaySchedule::lr(std::uint64_t step) const {
  return base_lr_ * std::pow(factor_, double(step / every_));
}

std::unique_ptr<LrSchedule> make_schedule(const std::string& spec) {
  // Split on ':' into head + numeric args.
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(begin));
      break;
    }
    parts.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
  FEDMS_EXPECTS(!parts.empty());
  const std::string& head = parts.front();
  if (head == "constant") {
    FEDMS_EXPECTS(parts.size() == 2);
    return std::make_unique<ConstantSchedule>(std::stod(parts[1]));
  }
  if (head == "invdecay") {
    FEDMS_EXPECTS(parts.size() == 3);
    return std::make_unique<InverseDecaySchedule>(std::stod(parts[1]),
                                                  std::stod(parts[2]));
  }
  if (head == "step") {
    FEDMS_EXPECTS(parts.size() == 4);
    return std::make_unique<StepDecaySchedule>(
        std::stod(parts[1]), std::stod(parts[2]),
        std::stoull(parts[3]));
  }
  FEDMS_EXPECTS(!"unknown schedule spec");
  return nullptr;
}

Sgd::Sgd(std::unique_ptr<LrSchedule> schedule, SgdOptions options)
    : schedule_(std::move(schedule)), options_(options) {
  FEDMS_EXPECTS(schedule_ != nullptr);
  FEDMS_EXPECTS(options_.momentum >= 0.0 && options_.momentum < 1.0);
  FEDMS_EXPECTS(options_.weight_decay >= 0.0);
}

void Sgd::step(const std::vector<ParamRef>& params) {
  const float lr = static_cast<float>(schedule_->lr(step_count_));
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);

  if (mu > 0.0f && momentum_buffers_.size() != params.size()) {
    momentum_buffers_.clear();
    momentum_buffers_.reserve(params.size());
    for (const auto& p : params)
      momentum_buffers_.emplace_back(p.value->shape());
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    const Tensor& g = *params[i].grad;
    FEDMS_EXPECTS(w.same_shape(g));
    if (mu > 0.0f) {
      Tensor& v = momentum_buffers_[i];
      FEDMS_EXPECTS(v.same_shape(w));
      float* pv = v.data();
      float* pw = w.data();
      const float* pg = g.data();
      for (std::size_t j = 0; j < w.numel(); ++j) {
        const float grad_j = pg[j] + wd * pw[j];
        pv[j] = mu * pv[j] + grad_j;
        pw[j] -= lr * pv[j];
      }
    } else {
      float* pw = w.data();
      const float* pg = g.data();
      for (std::size_t j = 0; j < w.numel(); ++j)
        pw[j] -= lr * (pg[j] + wd * pw[j]);
    }
  }
  ++step_count_;
}

Adam::Adam(std::unique_ptr<LrSchedule> schedule, AdamOptions options)
    : schedule_(std::move(schedule)), options_(options) {
  FEDMS_EXPECTS(schedule_ != nullptr);
  FEDMS_EXPECTS(options_.beta1 >= 0.0 && options_.beta1 < 1.0);
  FEDMS_EXPECTS(options_.beta2 >= 0.0 && options_.beta2 < 1.0);
  FEDMS_EXPECTS(options_.epsilon > 0.0);
  FEDMS_EXPECTS(options_.weight_decay >= 0.0);
}

void Adam::step(const std::vector<ParamRef>& params) {
  if (first_moment_.size() != params.size()) {
    first_moment_.clear();
    second_moment_.clear();
    for (const auto& p : params) {
      first_moment_.emplace_back(p.value->shape());
      second_moment_.emplace_back(p.value->shape());
    }
  }
  ++step_count_;
  const double lr = schedule_->lr(step_count_ - 1);
  const double b1 = options_.beta1, b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, double(step_count_));
  const double bias2 = 1.0 - std::pow(b2, double(step_count_));
  const float wd = static_cast<float>(options_.weight_decay);

  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    const Tensor& g = *params[i].grad;
    FEDMS_EXPECTS(w.same_shape(g));
    Tensor& m = first_moment_[i];
    Tensor& v = second_moment_[i];
    float* pw = w.data();
    const float* pg = g.data();
    float* pm = m.data();
    float* pv = v.data();
    for (std::size_t j = 0; j < w.numel(); ++j) {
      const double grad = double(pg[j]) + double(wd) * pw[j];
      pm[j] = static_cast<float>(b1 * pm[j] + (1.0 - b1) * grad);
      pv[j] = static_cast<float>(b2 * pv[j] + (1.0 - b2) * grad * grad);
      const double m_hat = pm[j] / bias1;
      const double v_hat = pv[j] / bias2;
      pw[j] -= static_cast<float>(
          lr * m_hat / (std::sqrt(v_hat) + options_.epsilon));
    }
  }
}

}  // namespace fedms::nn
