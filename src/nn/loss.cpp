#include "nn/loss.h"

#include <cmath>

#include "core/contracts.h"
#include "tensor/ops.h"

namespace fedms::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::size_t>& labels) {
  FEDMS_EXPECTS(logits.rank() == 2);
  FEDMS_EXPECTS(labels.size() == logits.dim(0));
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  cached_probs_ = tensor::softmax_rows(logits);
  cached_labels_ = labels;
  double loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    FEDMS_EXPECTS(labels[i] < classes);
    // Clamp to avoid log(0) when a float32 softmax underflows.
    const double p =
        std::max(double(cached_probs_.at(i, labels[i])), 1e-12);
    loss -= std::log(p);
  }
  return loss / double(batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
  FEDMS_EXPECTS(cached_probs_.numel() > 0);
  const std::size_t batch = cached_probs_.dim(0);
  Tensor grad = cached_probs_;
  const float inv_batch = 1.0f / float(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    grad.at(i, cached_labels_[i]) -= 1.0f;
  }
  tensor::scale_inplace(grad, inv_batch);
  return grad;
}

double MeanSquaredError::forward(const Tensor& prediction,
                                 const Tensor& target) {
  FEDMS_EXPECTS(prediction.same_shape(target));
  FEDMS_EXPECTS(prediction.numel() > 0);
  cached_prediction_ = prediction;
  cached_target_ = target;
  return tensor::squared_l2_distance(prediction, target) /
         double(prediction.numel());
}

Tensor MeanSquaredError::backward() const {
  FEDMS_EXPECTS(cached_prediction_.numel() > 0);
  Tensor grad = tensor::sub(cached_prediction_, cached_target_);
  tensor::scale_inplace(grad, 2.0f / float(grad.numel()));
  return grad;
}

}  // namespace fedms::nn
