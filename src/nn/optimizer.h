// SGD optimizer and learning-rate schedules.
//
// `InverseDecaySchedule` implements the paper's Theorem-1 rate
// η_t = φ/(γ + t) with φ = 2/μ, γ = max(8L/μ, E), used by the theory
// benches; the figure benches use a constant rate as the experimental
// section of the paper does for MobileNet training.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedms::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate to apply at global step t (0-based).
  virtual double lr(std::uint64_t step) const = 0;
};

class ConstantSchedule final : public LrSchedule {
 public:
  explicit ConstantSchedule(double lr);
  double lr(std::uint64_t /*step*/) const override { return lr_; }

 private:
  double lr_;
};

// η_t = phi / (gamma + t). The paper's Theorem-1 choice is
// phi = 2/μ, gamma = max(8L/μ, E).
class InverseDecaySchedule final : public LrSchedule {
 public:
  InverseDecaySchedule(double phi, double gamma);
  double lr(std::uint64_t step) const override {
    return phi_ / (gamma_ + double(step));
  }

 private:
  double phi_;
  double gamma_;
};

// Multiplies a base rate by `factor` every `every` steps.
class StepDecaySchedule final : public LrSchedule {
 public:
  StepDecaySchedule(double base_lr, double factor, std::uint64_t every);
  double lr(std::uint64_t step) const override;

 private:
  double base_lr_;
  double factor_;
  std::uint64_t every_;
};

// Builds a schedule from a textual spec:
//   "constant:<lr>" | "invdecay:<phi>:<gamma>" | "step:<base>:<factor>:<every>"
// Contract-violates on malformed specs.
std::unique_ptr<LrSchedule> make_schedule(const std::string& spec);

struct SgdOptions {
  double momentum = 0.0;      // classical momentum (0 disables)
  double weight_decay = 0.0;  // decoupled L2 on parameter values
};

// Stateless w.r.t. the model: operates on whatever ParamRefs are passed,
// keyed by position, so the same optimizer can be re-bound after a client
// loads a new global model.
class Sgd {
 public:
  Sgd(std::unique_ptr<LrSchedule> schedule, SgdOptions options = {});

  // Applies one update: w -= lr(step) * (g + weight_decay * w), with
  // momentum buffering when enabled. Does NOT zero the gradients.
  void step(const std::vector<ParamRef>& params);

  double current_lr() const { return schedule_->lr(step_count_); }
  std::uint64_t step_count() const { return step_count_; }
  void reset_step_count() { step_count_ = 0; }

 private:
  std::unique_ptr<LrSchedule> schedule_;
  SgdOptions options_;
  std::uint64_t step_count_ = 0;
  std::vector<Tensor> momentum_buffers_;
};

// Adam (Kingma & Ba 2015) with bias-corrected first/second moments.
// Provided for the substrate's completeness; the paper's analysis and all
// figure benches use plain SGD.
struct AdamOptions {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  // L2 on parameter values, added to gradients
};

class Adam {
 public:
  Adam(std::unique_ptr<LrSchedule> schedule, AdamOptions options = {});

  // One update over the given parameters. Does NOT zero gradients.
  void step(const std::vector<ParamRef>& params);

  std::uint64_t step_count() const { return step_count_; }

 private:
  std::unique_ptr<LrSchedule> schedule_;
  AdamOptions options_;
  std::uint64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace fedms::nn
