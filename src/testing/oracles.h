// Invariant oracles for the fuzz harness.
//
// Each oracle checks one algorithm-level property that must hold on EVERY
// schedule, fault-laden or not — the harness's answer to "what does a
// correct run look like when we can't predict the exact output":
//
//   envelope      Theorem-1 robustness: whenever a client's filter applied
//                 a per-side trim >= the number of Byzantine candidates in
//                 its set, the filtered model lies coordinate-wise within
//                 the [min, max] envelope of the honest candidates (and is
//                 finite). The PR 4 degraded-quorum under-trim bug is
//                 exactly a violation of this oracle.
//   finite        no NaN/Inf ever enters a kept window: the installed
//                 model stays finite whenever the filter's trim budget
//                 covers the attack (checked as part of `envelope`).
//   trace         event-trace causality over the async runtime's recorded
//                 trace: virtual time and round indices are nondecreasing,
//                 every active client trains exactly once per round and
//                 filters (or falls back) exactly once, never before
//                 training — clients a FaultPlan's churn marks absent owe
//                 exactly zero of each — and no link delivers more copies
//                 than were sent.
//   stage-order   telemetry spans group per round into the canonical
//                 local_training -> upload -> aggregation -> dissemination
//                 -> filter order (fault-free runs only — stragglers may
//                 legitimately interleave stages across clients).
//   wire          the frame codec round-trips every model under EVERY
//                 negotiated wire encoding: lossless f32 bit-for-bit
//                 (including non-finite payloads from NaN-poisoning
//                 attacks); lossy encodings decode bit-identically to the
//                 sender's own round-trip and stay within the encoding's
//                 error bound of the original; corrupted scale/index
//                 metadata and reference-CRC flips are rejected with
//                 one-line errors, never decoded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fl/aggregators.h"
#include "obs/obs.h"
#include "runtime/async_fedms.h"

namespace fedms::testing {

struct OracleViolation {
  std::string oracle;  // stable name ("envelope", "trace", ...)
  std::string detail;  // deterministic one-line description
};
using OracleResult = std::optional<OracleViolation>;

// The envelope + finiteness oracles over one filter decision.
// `is_byzantine[s]` is the run's PS placement; `attack_nonfinite` relaxes
// the finiteness check for non-trimming filters under NaN-emitting attacks
// (vanilla mean is *expected* to break there — that is the paper's point).
OracleResult check_filter_event(const runtime::FilterEvent& event,
                                const std::vector<bool>& is_byzantine,
                                bool attack_nonfinite);

// Trace causality over AsyncRunResult::trace (requires record_trace).
// `plan`, when non-null, makes the per-client expectations
// membership-aware: a client the plan's churn marks inactive at round r
// must train and filter exactly zero times there (it only leaves an
// "absent" marker in the trace); every other (client, round) pair still
// owes exactly one of each.
OracleResult check_trace_causality(
    const std::vector<std::string>& trace, std::size_t clients,
    std::uint64_t rounds, const runtime::FaultPlan* plan = nullptr);

// Canonical per-round stage order over an obs span snapshot (spans of
// `category` only; first-start per stage must follow
// obs::canonical_stages()).
OracleResult check_canonical_stage_order(
    const std::vector<obs::SpanRecord>& spans, const char* category);

// Wire round-trip over every negotiated encoding (f32, fp16, int8,
// topk:0.25, delta+{f32,fp16,int8}): frame-encode + decode each model as
// one per-stream chain and require (a) the receiver's reconstruction to be
// bitwise identical to the sender's own round-trip (memcmp, so NaN
// payloads compare too), (b) lossless f32 to be bit-for-bit with the
// original, (c) lossy decodes to stay within the encoding's error bound,
// and (d) corrupted scale/index metadata to be rejected with one-line
// errors.
OracleResult check_wire_roundtrip(
    const std::vector<fl::ModelVector>& models);

}  // namespace fedms::testing
