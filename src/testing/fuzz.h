// The deterministic fuzz engine: executes one FuzzSchedule through the
// execution paths its kind selects and returns the first property
// violation, if any.
//
//   kParity     sync fl::FedMsRun vs async runtime::AsyncFedMsRun on the
//               same convex workload — per-round per-client model CRCs,
//               losses, eval metrics, and traffic must agree bit-for-bit —
//               plus the filter/trace/stage-order/wire oracles.
//   kFault      async runtime under the schedule's scripted events, run
//               twice: bit-identical traces, telemetry, and final models,
//               plus the filter/trace/wire oracles (stage order is only
//               asserted fault-free — stragglers legitimately interleave).
//   kTransport  sync simulator vs the in-memory transport engine (threads
//               + wire codec) on a tiny NN workload: exact final
//               accuracy/loss/model-CRC/data-byte agreement.
//
// A failing schedule round-trips through a JSON repro file
// (repro_json/load_repro) that replays bit-for-bit, and shrinks by greedy
// event removal (shrink_schedule) — each candidate run is independent
// because schedule events are scripted, not drawn from the fault RNG.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "testing/oracles.h"
#include "testing/schedule.h"

namespace fedms::testing {

struct FuzzOptions {
  // Self-test fault plant: re-creates the PR 4 degraded-set under-trim bug
  // inside the client filter hook (⌊β·P'⌋ instead of min(B, ⌊(P'−1)/2⌋)
  // whenever a candidate set is short). The envelope oracle must catch it.
  bool inject_under_trim = false;
  // Self-test churn plant: executes kFault schedules with join/leave
  // events stripped from the FaultPlan — every client stays resident —
  // while the causality oracle still scores membership against the full
  // plan. A churned-out client then trains anyway, and the trace oracle
  // must report "trained 1 times (expected 0)".
  bool inject_ghost_churn = false;
  // Self-test numerics plant: the async client filter recomputes its
  // output under pinned round-to-nearest while the rest of the run (and
  // the sync baseline) executes under the schedule's ambient rounding
  // mode. Under any directed mode the recomputed sums land on different
  // ulps, models drift, and the parity oracle must fire; under "nearest"
  // the recompute is bitwise a no-op (that IS the determinism contract)
  // and the run must stay clean.
  bool inject_mode_drift = false;
  // Self-test estimator plant: whenever the adaptive filter trims, the
  // filtered model is recomputed with the trim clamped one below the
  // estimate B̂ while the reported trim stays honest — the Chen/Zhang/
  // Huang under-estimation failure mode. The envelope oracle scores the
  // (honest) trim as covering the Byzantine candidates, the under-trimmed
  // mean lets the attacked candidate through, and "envelope" must fire.
  bool inject_adaptive_undertrim = false;
};

struct FuzzOutcome {
  // First violated property; nullopt = the schedule passed. Differential
  // mismatches use the oracle names "parity", "determinism", "transport".
  std::optional<OracleViolation> violation;
  // Async event-trace hash (0 for kTransport) — the replay witness: a
  // repro re-execution must reproduce it exactly.
  std::uint64_t trace_hash = 0;
  // Client filter decisions observed (self-tests assert coverage > 0).
  std::size_t filter_events = 0;

  bool passed() const { return !violation.has_value(); }
};

FuzzOutcome run_schedule(const FuzzSchedule& schedule,
                         const FuzzOptions& options = {});

// Repro file = the schedule JSON plus a "repro" member recording the
// violation and fuzz options; FuzzSchedule::from_json ignores the extra
// member, so a repro file is also a valid schedule file.
std::string repro_json(const FuzzSchedule& schedule,
                       const OracleViolation& violation,
                       const FuzzOptions& options);

struct Repro {
  FuzzSchedule schedule;
  FuzzOptions options;
  // The recorded violation this file reproduces (empty if absent).
  std::string oracle;
  std::string detail;
};
// Throws std::runtime_error on malformed input.
Repro load_repro(const std::string& text);

// Greedy minimization: repeatedly removes single schedule events as long
// as the same oracle still fires. `runs`, when non-null, accumulates the
// number of candidate executions (telemetry for the CLI).
FuzzSchedule shrink_schedule(const FuzzSchedule& schedule,
                             const FuzzOptions& options,
                             const std::string& oracle,
                             std::size_t* runs = nullptr);

// Hand-built regression scenario for the planted under-trim bug: P = 5,
// B = 1, trmean:0.2, signflip, one honest broadcast to client 0 dropped.
// The client holds P' = 4 >= quorum 3; the correct degraded trim is
// min(B, ⌊(P'−1)/2⌋) = 1, the planted ⌊β·P'⌋ = 0 lets the sign-flipped
// candidate into the mean, and the envelope oracle fires.
FuzzSchedule under_trim_scenario();

// Hand-built regression scenario for the adaptive-undertrim plant: P = 5,
// B = 1, adaptive filter, signflip, full uploads, plus one decoy
// broadcast drop. The estimator flags the sign-flipped candidate (B̂ = 1
// covers the single Byzantine PS), the plant recomputes the filtered
// model with trim B̂ − 1 = 0, the attacked candidate enters the mean, and
// the envelope oracle fires; shrinking strips the decoy to zero events
// (the bug lives in the estimator, not the fault schedule).
FuzzSchedule adaptive_under_trim_scenario();

// Hand-built regression scenario for the ghost-churn plant: 3 clients,
// client 1 leaves at round 1 of 3, plus decoy events — a message drop and
// a crash/recover pair whose partial removal yields an invalid candidate
// (recover without a crash), so shrinking also exercises the
// check_events guard. With inject_ghost_churn the leave is ignored at
// execution time, client 1 trains in rounds 1–2 anyway, and the trace
// oracle fires; shrinking strips the decoys down to the single leave.
FuzzSchedule churn_ghost_scenario();

// Hand-built regression scenario for the mode-drift plant: a fault-free
// parity case under rounding_mode "downward" with a trmean filter. With
// inject_mode_drift the async filter recomputes under nearest while the
// sync baseline rounds downward, the per-round model CRCs diverge, and
// the parity oracle fires. No schedule events — shrinking is trivially a
// fixed point (the bug lives on the numerics axis, not the event list).
FuzzSchedule mode_drift_scenario();

}  // namespace fedms::testing
