#include "testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <tuple>

#include "core/contracts.h"
#include "fl/wire_encoding.h"
#include "net/message.h"
#include "obs/trace_merge.h"
#include "transport/frame.h"

namespace fedms::testing {

namespace {

OracleViolation violation(const char* oracle, const std::string& detail) {
  return OracleViolation{oracle, detail};
}

std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

OracleResult check_filter_event(const runtime::FilterEvent& event,
                                const std::vector<bool>& is_byzantine,
                                bool attack_nonfinite) {
  std::size_t byzantine_candidates = 0;
  for (const std::size_t s : event.servers)
    if (is_byzantine[s]) ++byzantine_candidates;

  const bool trimming = event.trim != fl::kNoTrim;
  // The guarantees only hold when the trim budget covers the Byzantine
  // candidates (or, for non-trimming rules, when the attack cannot emit
  // non-finite values — vanilla mean under NaN poisoning is expected to
  // break; that failure is the paper's motivation, not a bug).
  const bool guarded =
      trimming ? event.trim >= byzantine_candidates : !attack_nonfinite;
  if (!guarded) return std::nullopt;

  const std::size_t bad =
      fl::first_nonfinite_coordinate(event.filtered);
  if (bad < event.filtered.size())
    return violation(
        "finite",
        format("r%llu client %zu: filtered model non-finite at coordinate "
               "%zu with trim %zu covering %zu byzantine candidates",
               static_cast<unsigned long long>(event.round), event.client,
               bad, trimming ? event.trim : std::size_t(0),
               byzantine_candidates));

  if (!trimming) return std::nullopt;

  std::vector<fl::ModelVector> honest;
  for (std::size_t i = 0; i < event.servers.size(); ++i)
    if (!is_byzantine[event.servers[i]])
      honest.push_back(event.candidates[i]);
  if (honest.empty()) return std::nullopt;
  for (std::size_t i = 0, h = 0; i < event.servers.size(); ++i) {
    if (is_byzantine[event.servers[i]]) continue;
    const std::size_t j = fl::first_nonfinite_coordinate(honest[h++]);
    if (j < event.filtered.size())
      return violation(
          "finite",
          format("r%llu client %zu: honest candidate from server %zu is "
                 "non-finite at coordinate %zu (upstream corruption)",
                 static_cast<unsigned long long>(event.round), event.client,
                 event.servers[i], j));
  }

  std::size_t coordinate = 0;
  if (!fl::within_coordinate_envelope(event.filtered, honest, 1e-4,
                                      &coordinate)) {
    double lo = honest[0][coordinate], hi = honest[0][coordinate];
    for (const fl::ModelVector& h : honest) {
      lo = std::min(lo, double(h[coordinate]));
      hi = std::max(hi, double(h[coordinate]));
    }
    return violation(
        "envelope",
        format("r%llu client %zu: filtered[%zu]=%.9g outside honest "
               "envelope [%.9g, %.9g] (P'=%zu, trim=%zu, byzantine "
               "candidates=%zu)",
               static_cast<unsigned long long>(event.round), event.client,
               coordinate, double(event.filtered[coordinate]), lo, hi,
               event.candidates.size(), event.trim, byzantine_candidates));
  }
  return std::nullopt;
}

OracleResult check_trace_causality(const std::vector<std::string>& trace,
                                   std::size_t clients, std::uint64_t rounds,
                                   const runtime::FaultPlan* plan) {
  std::map<std::pair<std::uint64_t, std::string>, int> trained;
  std::map<std::pair<std::uint64_t, std::string>, int> finished;
  std::map<std::tuple<std::uint64_t, std::string, std::string>, long> sent;
  std::uint64_t last_round = 0;
  double last_time = -1.0;
  for (const std::string& line : trace) {
    unsigned long long round = 0;
    double time = 0.0;
    char event[64] = {0};
    char link[128] = {0};
    if (std::sscanf(line.c_str(), "r%llu t=%lf %63s %127s", &round, &time,
                    event, link) != 4)
      return violation("trace", "unparseable trace line: " + line);
    if (round < last_round)
      return violation("trace",
                       format("round went backwards at: %s", line.c_str()));
    if (round > last_round) last_time = -1.0;
    last_round = round;
    if (time < last_time)
      return violation(
          "trace", format("virtual time went backwards at: %s", line.c_str()));
    last_time = time;
    const std::string link_text(link);
    const auto arrow = link_text.find("->");
    if (arrow == std::string::npos)
      return violation("trace", "missing arrow in trace line: " + line);
    const std::string from = link_text.substr(0, arrow);
    const std::string to = link_text.substr(arrow + 2);
    const std::string name(event);
    if (name == "trained") {
      ++trained[{round, from}];
    } else if (name == "filter" || name == "fallback") {
      if (trained[{round, from}] == 0)
        return violation(
            "trace", format("client filtered before training: %s",
                            line.c_str()));
      ++finished[{round, from}];
    } else if (name == "send" || name == "send-dup") {
      ++sent[{round, from, to}];
    } else if (name == "deliver") {
      if (--sent[{round, from, to}] < 0)
        return violation(
            "trace",
            format("delivery without a matching send: %s", line.c_str()));
    }
  }
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::size_t k = 0; k < clients; ++k) {
      const int expected =
          (plan != nullptr && !plan->client_active(k, r)) ? 0 : 1;
      const std::string node = "client#" + std::to_string(k);
      if (trained[{r, node}] != expected)
        return violation(
            "trace", format("r%llu %s trained %d times (expected %d)",
                            static_cast<unsigned long long>(r), node.c_str(),
                            trained[{r, node}], expected));
      if (finished[{r, node}] != expected)
        return violation(
            "trace",
            format("r%llu %s filtered/fell back %d times (expected %d)",
                   static_cast<unsigned long long>(r), node.c_str(),
                   finished[{r, node}], expected));
    }
  }
  return std::nullopt;
}

OracleResult check_canonical_stage_order(
    const std::vector<obs::SpanRecord>& spans, const char* category) {
  const std::vector<std::string>& canonical = obs::canonical_stages();
  // round -> stage -> earliest start.
  std::map<std::uint64_t, std::map<std::string, std::uint64_t>> starts;
  for (const obs::SpanRecord& span : spans) {
    if (std::strcmp(span.category, category) != 0) continue;
    if (span.round == obs::kNoRound) continue;
    auto& stage_starts = starts[span.round];
    const auto [it, inserted] =
        stage_starts.emplace(span.name, span.start_ns);
    if (!inserted && span.start_ns < it->second) it->second = span.start_ns;
  }
  for (const auto& [round, stage_starts] : starts) {
    std::uint64_t previous_start = 0;
    const std::string* previous_stage = nullptr;
    for (const std::string& stage : canonical) {
      const auto it = stage_starts.find(stage);
      if (it == stage_starts.end()) continue;
      if (previous_stage != nullptr && it->second < previous_start)
        return violation(
            "stage-order",
            format("r%llu: stage %s first-starts before %s",
                   static_cast<unsigned long long>(round),
                   it->first.c_str(), previous_stage->c_str()));
      previous_start = it->second;
      previous_stage = &it->first;
    }
  }
  return std::nullopt;
}

namespace {

// Acceptable fp16 round-trip of `target`: NaN stays NaN, values beyond the
// binary16 range may saturate to inf, finite values stay within half a
// binary16 ulp (checked as the generous |target|/1024 + 1e-6).
bool half_roundtrip_ok(float target, double received) {
  if (std::isnan(target)) return std::isnan(received);
  if (std::isinf(target) || std::abs(target) > 65000.0f)
    return !std::isfinite(received) || std::abs(received) > 65000.0;
  return std::abs(received - double(target)) <=
         std::abs(double(target)) / 1024.0 + 1e-6;
}

// Per-coordinate error bound for the wire int8 quantizer over `target`:
// each kWireInt8Block-sized block is scaled by its finite max-abs / 127,
// so the rounding error is at most half that step (doubled here for
// slack). Non-finite coordinates are checked separately (NaN sentinel).
std::vector<double> int8_error_bounds(const std::vector<float>& target) {
  std::vector<double> bounds(target.size(), 0.0);
  for (std::size_t begin = 0; begin < target.size();
       begin += fl::kWireInt8Block) {
    const std::size_t end =
        std::min(begin + fl::kWireInt8Block, target.size());
    double max_abs = 0.0;
    for (std::size_t j = begin; j < end; ++j)
      if (std::isfinite(target[j]))
        max_abs = std::max(max_abs, std::abs(double(target[j])));
    const double bound = max_abs / 127.0 + 1e-7;
    for (std::size_t j = begin; j < end; ++j) bounds[j] = bound;
  }
  return bounds;
}

// Every wire encoding the negotiation can produce, exercised on the same
// model stream the fuzz schedule generated.
constexpr const char* kWireOracleEncodings[] = {
    "f32",       "fp16",       "int8",      "topk:0.25",
    "delta+f32", "delta+fp16", "delta+int8"};

// Rejection probes: corrupted scale/index metadata must come back as a
// one-line error (no newline, non-empty), never as decoded floats.
OracleResult check_wire_rejections(const fl::ModelVector& model) {
  const transport::FrameCodec codec("none");
  const auto one_line = [](const std::string& text) {
    return !text.empty() && text.find('\n') == std::string::npos;
  };

  // Top-k: flipping one index-bitmap bit breaks popcount(bitmap) == k.
  fl::WireEncodingSpec topk_spec;
  FEDMS_EXPECTS(fl::parse_wire_encoding("topk:0.5", &topk_spec).empty());
  fl::WireChannel topk_sender(topk_spec);
  (void)topk_sender.encode(model);  // keyframe (k = dim)
  const fl::WireEncodeResult second = topk_sender.encode(model);
  std::vector<std::uint8_t> bad_bitmap = second.bytes;
  // Stateful header: flags byte + u32 reference CRC, then u32 count,
  // u32 k, and the index bitmap.
  const std::size_t bitmap_offset = 5 + 8;
  FEDMS_EXPECTS(bad_bitmap.size() > bitmap_offset);
  bad_bitmap[bitmap_offset] ^= 0x01;
  const std::string bitmap_error = fl::validate_stateful_payload(
      fl::kWireFormatTopK, bad_bitmap.data(), bad_bitmap.size());
  if (!one_line(bitmap_error))
    return violation("wire",
                     "corrupted top-k index bitmap not rejected with a "
                     "one-line error by structural validation");
  net::Message tampered;
  tampered.from = net::server_id(0);
  tampered.to = net::client_id(0);
  tampered.kind = net::MessageKind::kModelBroadcast;
  tampered.round = 1;
  tampered.payload = second.decoded;
  tampered.encoded = bad_bitmap;
  tampered.encoded_bytes = bad_bitmap.size();
  tampered.wire_format = fl::kWireFormatTopK;
  const transport::FrameCodec::DecodeResult frame_result =
      codec.decode(codec.encode(tampered));
  if (frame_result.error != transport::FrameError::kBadPayload)
    return violation(
        "wire",
        format("frame codec returned %s for a corrupted top-k bitmap "
               "(expected bad-payload)",
               transport::to_string(frame_result.error)));

  // Truncation inside the half-value section.
  std::vector<std::uint8_t> truncated = second.bytes;
  truncated.resize(truncated.size() - 1);
  if (!one_line(fl::validate_stateful_payload(
          fl::kWireFormatTopK, truncated.data(), truncated.size())))
    return violation("wire",
                     "truncated top-k payload not rejected with a one-line "
                     "error");

  // Delta+int8: zeroing the embedded block-size scale metadata.
  fl::WireEncodingSpec delta_spec;
  FEDMS_EXPECTS(fl::parse_wire_encoding("delta+int8", &delta_spec).empty());
  fl::WireChannel delta_sender(delta_spec);
  const fl::WireEncodeResult keyframe = delta_sender.encode(model);
  std::vector<std::uint8_t> bad_scale = keyframe.bytes;
  // Int8 buffer header behind the stateful prefix: u32 count, u32 block.
  const std::size_t block_offset = 5 + 4;
  FEDMS_EXPECTS(bad_scale.size() >= block_offset + 4);
  for (std::size_t b = 0; b < 4; ++b) bad_scale[block_offset + b] = 0;
  if (!one_line(fl::validate_stateful_payload(
          fl::kWireFormatDeltaInt8, bad_scale.data(), bad_scale.size())))
    return violation("wire",
                     "zeroed int8 block-size metadata not rejected with a "
                     "one-line error");

  // Reference-CRC flip on a live stream: the receiving channel must report
  // desynchronization instead of adding the delta to the wrong reference.
  fl::WireChannel delta_receiver(delta_spec);
  (void)delta_receiver.decode(fl::kWireFormatDeltaInt8, keyframe.bytes);
  fl::WireEncodeResult delta_frame = delta_sender.encode(model);
  delta_frame.bytes[1] ^= 0xff;
  try {
    (void)delta_receiver.decode(fl::kWireFormatDeltaInt8,
                                delta_frame.bytes);
    return violation("wire",
                     "corrupted reference CRC decoded instead of raising a "
                     "desynchronization error");
  } catch (const std::exception& error) {
    if (!one_line(error.what()))
      return violation("wire",
                       "reference-CRC rejection is not a one-line error");
  }
  return std::nullopt;
}

}  // namespace

OracleResult check_wire_roundtrip(
    const std::vector<fl::ModelVector>& models) {
  const transport::FrameCodec codec("none");
  for (const char* encoding : kWireOracleEncodings) {
    fl::WireEncodingSpec spec;
    const std::string parse_error =
        fl::parse_wire_encoding(encoding, &spec);
    if (!parse_error.empty())
      return violation("wire", format("built-in spec %s rejected: %s",
                                      encoding, parse_error.c_str()));
    fl::WireChannel sender(spec);
    fl::WireChannel receiver(spec);
    std::vector<float> reference;  // receiver-visible model before frame i
    for (std::size_t i = 0; i < models.size(); ++i) {
      const fl::ModelVector& model = models[i];
      net::Message message;
      message.from = net::server_id(0);
      message.to = net::client_id(0);
      message.kind = net::MessageKind::kModelBroadcast;
      message.round = i;
      fl::WireEncodeResult wire;
      if (spec.is_f32() || model.empty()) {
        // The frame layer refuses zero-length compressed payloads, so an
        // empty model always ships raw; the wire channels stay untouched
        // and their references carry over to the next non-empty frame.
        message.payload = model;
      } else {
        wire = sender.encode(model);
        message.payload = wire.decoded;
        message.encoded = wire.bytes;
        message.encoded_bytes = wire.bytes.size();
        message.wire_format = spec.format_tag();
      }
      const std::vector<std::uint8_t> frame = codec.encode(message);
      const transport::FrameCodec::DecodeResult decoded =
          codec.decode(frame);
      if (!decoded.ok())
        return violation(
            "wire", format("%s model %zu failed to decode: %s", encoding, i,
                           transport::to_string(decoded.error)));
      std::vector<float> received;
      if (decoded.message.payload.empty() &&
          decoded.message.encoded_bytes > 0) {
        // Stateful frame: the codec validated the structure and left the
        // bytes for the receiver's per-stream channel.
        try {
          received = receiver.decode(decoded.message.wire_format,
                                     decoded.message.encoded);
        } catch (const std::exception& error) {
          return violation(
              "wire", format("%s model %zu: receiver rejected its own "
                             "stream: %s",
                             encoding, i, error.what()));
        }
      } else {
        received = std::move(decoded.message.payload);
      }

      // Receiver reconstruction == sender round-trip, bit for bit, for
      // EVERY encoding — the invariant behind `fedms_node --verify` and
      // the simulator's exact accounting under lossy wire paths.
      const std::vector<float>& expect =
          (spec.is_f32() || model.empty()) ? model : wire.decoded;
      if (received.size() != expect.size())
        return violation(
            "wire", format("%s model %zu changed size across the wire: "
                           "%zu -> %zu",
                           encoding, i, expect.size(), received.size()));
      if (!expect.empty() &&
          std::memcmp(received.data(), expect.data(),
                      expect.size() * sizeof(float)) != 0)
        return violation(
            "wire", format("%s model %zu: receiver decode diverged from "
                           "the sender round-trip",
                           encoding, i));

      // Independent per-encoding error bound against the original model.
      const bool keyframe = reference.size() != model.size();
      if (spec.is_f32() || spec.base == "f32") {
        // Lossless bases: f32 bit-for-bit; delta+f32 exact up to one
        // float add/subtract rounding (checked below via slack only).
        if (spec.is_f32() && !model.empty() &&
            std::memcmp(received.data(), model.data(),
                        model.size() * sizeof(float)) != 0)
          return violation(
              "wire",
              format("f32 model %zu payload not bit-identical after "
                     "round-trip",
                     i));
      }
      if (!spec.is_f32()) {
        std::vector<float> target;  // what the lossy base codec quantized
        if (spec.delta) {
          target.resize(model.size());
          for (std::size_t j = 0; j < model.size(); ++j)
            target[j] =
                keyframe ? model[j] : model[j] - reference[j];
        } else if (spec.topk == 0.0) {
          target = model;
        }
        std::vector<double> bounds;
        if (spec.topk == 0.0 && spec.base == "int8")
          bounds = int8_error_bounds(target);
        for (std::size_t j = 0; j < model.size(); ++j) {
          const double ref_j =
              (spec.stateful() && !keyframe) ? double(reference[j]) : 0.0;
          const double got = double(received[j]);
          if (spec.topk > 0.0) {
            // Every coordinate is either exactly the reference (not
            // selected this round) or within fp16 of the sender's value.
            if (!keyframe &&
                std::memcmp(&received[j], &reference[j], sizeof(float)) ==
                    0)
              continue;
            if (!half_roundtrip_ok(model[j], got))
              return violation(
                  "wire",
                  format("%s model %zu coordinate %zu: shipped top-k "
                         "value %.9g not an fp16 image of %.9g",
                         encoding, i, j, got, double(model[j])));
            continue;
          }
          if (!std::isfinite(model[j]) ||
              (spec.delta && !keyframe && !std::isfinite(reference[j]))) {
            // Non-finite inputs must stay visibly non-finite (fp16 keeps
            // NaN/inf, int8 ships the -128 sentinel).
            if (std::isfinite(got))
              return violation(
                  "wire",
                  format("%s model %zu coordinate %zu: non-finite input "
                         "decoded to finite %.9g",
                         encoding, i, j, got));
            continue;
          }
          const double quantized = got - ref_j;  // delta shipped this round
          const double slack =
              (std::abs(double(model[j])) + std::abs(ref_j)) * 1e-5 + 1e-6;
          bool ok = true;
          if (!std::isfinite(target[j])) {
            // Finite-minus-finite can still overflow to inf; the shipped
            // delta must stay non-finite rather than collapse silently.
            ok = !std::isfinite(quantized);
          } else if (spec.base == "f32") {
            ok = std::abs(quantized - double(target[j])) <= slack;
          } else if (spec.base == "fp16") {
            ok = half_roundtrip_ok(target[j], quantized) ||
                 std::abs(quantized - double(target[j])) <= slack;
          } else {  // int8
            ok = !std::isfinite(quantized) ||
                 std::abs(quantized - double(target[j])) <=
                     bounds[j] + slack;
          }
          if (!ok)
            return violation(
                "wire",
                format("%s model %zu coordinate %zu: decoded %.9g "
                       "violates the encoding's error bound around %.9g",
                       encoding, i, j, got, double(model[j])));
        }
      }
      if (spec.stateful() && !model.empty()) reference = wire.decoded;
    }
  }
  if (!models.empty() && models.front().size() >= 8)
    return check_wire_rejections(models.front());
  return std::nullopt;
}

}  // namespace fedms::testing
