#include "testing/oracles.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <tuple>

#include "net/message.h"
#include "obs/trace_merge.h"
#include "transport/frame.h"

namespace fedms::testing {

namespace {

OracleViolation violation(const char* oracle, const std::string& detail) {
  return OracleViolation{oracle, detail};
}

std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

OracleResult check_filter_event(const runtime::FilterEvent& event,
                                const std::vector<bool>& is_byzantine,
                                bool attack_nonfinite) {
  std::size_t byzantine_candidates = 0;
  for (const std::size_t s : event.servers)
    if (is_byzantine[s]) ++byzantine_candidates;

  const bool trimming = event.trim != fl::kNoTrim;
  // The guarantees only hold when the trim budget covers the Byzantine
  // candidates (or, for non-trimming rules, when the attack cannot emit
  // non-finite values — vanilla mean under NaN poisoning is expected to
  // break; that failure is the paper's motivation, not a bug).
  const bool guarded =
      trimming ? event.trim >= byzantine_candidates : !attack_nonfinite;
  if (!guarded) return std::nullopt;

  const std::size_t bad =
      fl::first_nonfinite_coordinate(event.filtered);
  if (bad < event.filtered.size())
    return violation(
        "finite",
        format("r%llu client %zu: filtered model non-finite at coordinate "
               "%zu with trim %zu covering %zu byzantine candidates",
               static_cast<unsigned long long>(event.round), event.client,
               bad, trimming ? event.trim : std::size_t(0),
               byzantine_candidates));

  if (!trimming) return std::nullopt;

  std::vector<fl::ModelVector> honest;
  for (std::size_t i = 0; i < event.servers.size(); ++i)
    if (!is_byzantine[event.servers[i]])
      honest.push_back(event.candidates[i]);
  if (honest.empty()) return std::nullopt;
  for (std::size_t i = 0, h = 0; i < event.servers.size(); ++i) {
    if (is_byzantine[event.servers[i]]) continue;
    const std::size_t j = fl::first_nonfinite_coordinate(honest[h++]);
    if (j < event.filtered.size())
      return violation(
          "finite",
          format("r%llu client %zu: honest candidate from server %zu is "
                 "non-finite at coordinate %zu (upstream corruption)",
                 static_cast<unsigned long long>(event.round), event.client,
                 event.servers[i], j));
  }

  std::size_t coordinate = 0;
  if (!fl::within_coordinate_envelope(event.filtered, honest, 1e-4,
                                      &coordinate)) {
    double lo = honest[0][coordinate], hi = honest[0][coordinate];
    for (const fl::ModelVector& h : honest) {
      lo = std::min(lo, double(h[coordinate]));
      hi = std::max(hi, double(h[coordinate]));
    }
    return violation(
        "envelope",
        format("r%llu client %zu: filtered[%zu]=%.9g outside honest "
               "envelope [%.9g, %.9g] (P'=%zu, trim=%zu, byzantine "
               "candidates=%zu)",
               static_cast<unsigned long long>(event.round), event.client,
               coordinate, double(event.filtered[coordinate]), lo, hi,
               event.candidates.size(), event.trim, byzantine_candidates));
  }
  return std::nullopt;
}

OracleResult check_trace_causality(const std::vector<std::string>& trace,
                                   std::size_t clients, std::uint64_t rounds,
                                   const runtime::FaultPlan* plan) {
  std::map<std::pair<std::uint64_t, std::string>, int> trained;
  std::map<std::pair<std::uint64_t, std::string>, int> finished;
  std::map<std::tuple<std::uint64_t, std::string, std::string>, long> sent;
  std::uint64_t last_round = 0;
  double last_time = -1.0;
  for (const std::string& line : trace) {
    unsigned long long round = 0;
    double time = 0.0;
    char event[64] = {0};
    char link[128] = {0};
    if (std::sscanf(line.c_str(), "r%llu t=%lf %63s %127s", &round, &time,
                    event, link) != 4)
      return violation("trace", "unparseable trace line: " + line);
    if (round < last_round)
      return violation("trace",
                       format("round went backwards at: %s", line.c_str()));
    if (round > last_round) last_time = -1.0;
    last_round = round;
    if (time < last_time)
      return violation(
          "trace", format("virtual time went backwards at: %s", line.c_str()));
    last_time = time;
    const std::string link_text(link);
    const auto arrow = link_text.find("->");
    if (arrow == std::string::npos)
      return violation("trace", "missing arrow in trace line: " + line);
    const std::string from = link_text.substr(0, arrow);
    const std::string to = link_text.substr(arrow + 2);
    const std::string name(event);
    if (name == "trained") {
      ++trained[{round, from}];
    } else if (name == "filter" || name == "fallback") {
      if (trained[{round, from}] == 0)
        return violation(
            "trace", format("client filtered before training: %s",
                            line.c_str()));
      ++finished[{round, from}];
    } else if (name == "send" || name == "send-dup") {
      ++sent[{round, from, to}];
    } else if (name == "deliver") {
      if (--sent[{round, from, to}] < 0)
        return violation(
            "trace",
            format("delivery without a matching send: %s", line.c_str()));
    }
  }
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::size_t k = 0; k < clients; ++k) {
      const int expected =
          (plan != nullptr && !plan->client_active(k, r)) ? 0 : 1;
      const std::string node = "client#" + std::to_string(k);
      if (trained[{r, node}] != expected)
        return violation(
            "trace", format("r%llu %s trained %d times (expected %d)",
                            static_cast<unsigned long long>(r), node.c_str(),
                            trained[{r, node}], expected));
      if (finished[{r, node}] != expected)
        return violation(
            "trace",
            format("r%llu %s filtered/fell back %d times (expected %d)",
                   static_cast<unsigned long long>(r), node.c_str(),
                   finished[{r, node}], expected));
    }
  }
  return std::nullopt;
}

OracleResult check_canonical_stage_order(
    const std::vector<obs::SpanRecord>& spans, const char* category) {
  const std::vector<std::string>& canonical = obs::canonical_stages();
  // round -> stage -> earliest start.
  std::map<std::uint64_t, std::map<std::string, std::uint64_t>> starts;
  for (const obs::SpanRecord& span : spans) {
    if (std::strcmp(span.category, category) != 0) continue;
    if (span.round == obs::kNoRound) continue;
    auto& stage_starts = starts[span.round];
    const auto [it, inserted] =
        stage_starts.emplace(span.name, span.start_ns);
    if (!inserted && span.start_ns < it->second) it->second = span.start_ns;
  }
  for (const auto& [round, stage_starts] : starts) {
    std::uint64_t previous_start = 0;
    const std::string* previous_stage = nullptr;
    for (const std::string& stage : canonical) {
      const auto it = stage_starts.find(stage);
      if (it == stage_starts.end()) continue;
      if (previous_stage != nullptr && it->second < previous_start)
        return violation(
            "stage-order",
            format("r%llu: stage %s first-starts before %s",
                   static_cast<unsigned long long>(round),
                   it->first.c_str(), previous_stage->c_str()));
      previous_start = it->second;
      previous_stage = &it->first;
    }
  }
  return std::nullopt;
}

OracleResult check_wire_roundtrip(
    const std::vector<fl::ModelVector>& models) {
  const transport::FrameCodec codec("none");
  for (std::size_t i = 0; i < models.size(); ++i) {
    net::Message message;
    message.from = net::server_id(0);
    message.to = net::client_id(0);
    message.kind = net::MessageKind::kModelBroadcast;
    message.round = i;
    message.payload = models[i];
    const std::vector<std::uint8_t> encoded = codec.encode(message);
    const transport::FrameCodec::DecodeResult decoded =
        codec.decode(encoded);
    if (!decoded.ok())
      return violation(
          "wire", format("model %zu failed to decode: %s", i,
                         transport::to_string(decoded.error)));
    if (decoded.message.payload.size() != models[i].size())
      return violation(
          "wire", format("model %zu changed size across the wire: %zu -> "
                         "%zu",
                         i, models[i].size(),
                         decoded.message.payload.size()));
    if (!models[i].empty() &&
        std::memcmp(decoded.message.payload.data(), models[i].data(),
                    models[i].size() * sizeof(float)) != 0)
      return violation(
          "wire",
          format("model %zu payload not bit-identical after round-trip", i));
  }
  return std::nullopt;
}

}  // namespace fedms::testing
