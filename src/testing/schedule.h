// Seed-driven round schedules for the deterministic fuzz harness.
//
// A FuzzSchedule is the complete, explicit description of one fuzz case:
// the federated topology (with 2B < P), protocol knobs, timeout windows,
// and a list of discrete schedule events (message drops/delays/duplicates
// matched by occurrence, server crashes, stragglers). Everything is
// derived from a single 64-bit seed by generate_schedule(), and everything
// round-trips through JSON, so a failing case can be written to a repro
// file, replayed bit-for-bit, and shrunk by deleting events one at a time.
//
// Events are *explicit* rather than rate-driven on purpose: the runtime's
// FaultPlan draws drop/delay decisions from an RNG stream, so removing one
// fault during shrinking would shift every later draw and change the whole
// schedule. A scripted event list keeps each fault independent — exactly
// what greedy minimization needs — and consumes no fault randomness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/config.h"
#include "runtime/async_fedms.h"
#include "runtime/policy.h"

namespace fedms::testing {

// Which execution paths the case exercises:
//   kParity    — fault-free; sync simulator vs async runtime, per-round
//                differential model/traffic agreement plus all oracles.
//   kFault     — async runtime only, with scripted schedule events; run
//                twice for bit-identical determinism, plus oracles.
//   kTransport — fault-free tiny NN workload; sync simulator vs in-memory
//                transport engine (threads + wire codec), final-state
//                differential agreement.
enum class ScheduleKind { kParity, kFault, kTransport };

const char* to_string(ScheduleKind kind);

enum class EventAction {
  kDrop,       // the n-th matching message is lost
  kDelay,      // ... arrives `seconds` late
  kDuplicate,  // ... is delivered twice
  kCrash,      // server `node` is crash-silent from round `round` on
  kStraggler,  // node's compute/link times are scaled by `seconds` >= 1
  kJoin,       // client `node` (re)enters training at round `round`
  kLeave,      // client `node` exits training at round `round`
  kRecover,    // crashed server `node` is live again from round `round`
};

const char* to_string(EventAction action);

struct ScheduleEvent {
  EventAction action = EventAction::kDrop;

  // Message-matched actions (drop/delay/duplicate): the occurrence-th
  // message (0-based, in deterministic send order) with matching round,
  // endpoints, and kind ("upload" | "broadcast" | "retry" | "any").
  std::uint64_t round = 0;
  bool from_server = false;
  std::size_t from = 0;
  bool to_server = false;
  std::size_t to = 0;
  std::string kind = "any";
  std::size_t occurrence = 0;

  // kDelay: extra seconds; kStraggler: slowdown factor (node = from).
  double seconds = 0.0;

  bool matches_messages() const {
    return action == EventAction::kDrop || action == EventAction::kDelay ||
           action == EventAction::kDuplicate;
  }

  std::string to_string() const;  // one-line human summary
};

struct FuzzSchedule {
  std::uint64_t seed = 0;  // the generating seed (identity only)
  ScheduleKind kind = ScheduleKind::kParity;

  // Topology + protocol (always 2B < P when generated).
  std::size_t clients = 4;
  std::size_t servers = 3;
  std::size_t byzantine = 1;
  std::size_t rounds = 2;
  std::size_t local_iterations = 2;
  std::string upload = "sparse";
  std::string client_filter = "trmean:0.34";
  std::string attack = "noise";
  std::string byzantine_placement = "first";
  double participation = 1.0;  // < 1 only for kTransport

  // Independent seeds for the run and the synthetic problem data.
  std::uint64_t run_seed = 1;
  std::uint64_t data_seed = 42;

  // fenv rounding mode the whole case executes under (the fuzz space's
  // numerics axis): "nearest" | "upward" | "downward" | "towardzero".
  // run_schedule() installs it scoped around the run and restores the
  // ambient mode on exit. Drawn from its own named RNG stream so existing
  // corpus seeds keep their exact historical schedules; absent from old
  // repro JSON (defaults to "nearest").
  std::string rounding_mode = "nearest";

  // Runtime windows (the "server timeout" axis of the fuzz space).
  double compute_seconds = 0.05;
  double upload_window_seconds = 0.25;
  double broadcast_timeout_seconds = 0.25;
  std::size_t max_retries = 2;
  double retry_backoff_seconds = 0.1;

  std::vector<ScheduleEvent> events;  // kFault only

  // The runtime/simulator configs this schedule denotes. runtime_options()
  // folds crash/recover/join/leave/straggler events into the FaultPlan
  // (and enables round-keyed client streams whenever churn events exist);
  // message-matched events are applied through the runtime's MessageHook
  // instead (see ScriptedFaults).
  fl::FedMsConfig fed_config() const;
  runtime::RuntimeOptions runtime_options() const;

  // Event-plan validity over this schedule's shape as a one-line error
  // ("" = valid): recover/join/leave events must name in-range nodes, a
  // recovery needs an earlier crash of the same server, no (client, round)
  // pair may churn twice, and no round may lose every client. from_json
  // applies it so hand-edited repro files report instead of aborting, and
  // shrink_schedule uses it to skip candidates where deleting one event
  // (say, a crash) orphans another (its paired recover).
  std::string check_events() const;

  std::string to_json() const;
  // Throws std::runtime_error on malformed input.
  static FuzzSchedule from_json(const std::string& text);
};

// Expands a 64-bit seed into a complete schedule (the fuzzer's generator).
FuzzSchedule generate_schedule(std::uint64_t seed);

// Turns the schedule's message-matched events into a runtime::MessageHook.
// Stateful: counts matching messages per event; reset() before every run
// (determinism double-runs reuse one instance).
class ScriptedFaults {
 public:
  explicit ScriptedFaults(const FuzzSchedule& schedule);

  runtime::MessageHook hook();  // binds `this`; outlive the run
  void reset();

 private:
  struct Entry {
    ScheduleEvent event;
    std::size_t seen = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace fedms::testing
