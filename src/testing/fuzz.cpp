#include "testing/fuzz.h"

#include <cfenv>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "byz/attack.h"
#include "core/rounding.h"
#include "data/convex.h"
#include "fl/experiment.h"
#include "fl/fedms.h"
#include "fl/quadratic_learner.h"
#include "obs/obs.h"
#include "runtime/async_fedms.h"
#include "testing/json_min.h"
#include "transport/frame.h"
#include "transport/node_runner.h"
#include "transport/transport.h"

namespace fedms::testing {

namespace {

std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

bool bits_equal(double a, double b) {
  std::uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof a);
  std::memcpy(&y, &b, sizeof b);
  return x == y;
}

bool bits_equal(const std::optional<double>& a,
                const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || bits_equal(*a, *b);
}

// The convex workload both async kinds run on (the runtime acceptance
// tests' problem shape, sized by the schedule).
data::QuadraticProblem make_problem(const FuzzSchedule& schedule) {
  data::QuadraticProblemConfig config;
  config.clients = schedule.clients;
  config.dimension = 16;
  config.heterogeneity = 0.5;
  config.gradient_noise = 0.5;
  core::Rng rng(schedule.data_seed);
  return data::QuadraticProblem(config, rng);
}

std::vector<fl::LearnerPtr> make_learners(
    const data::QuadraticProblem& problem, const fl::FedMsConfig& fed) {
  const core::SeedSequence seeds(fed.seed);
  std::vector<fl::LearnerPtr> learners;
  learners.reserve(problem.clients());
  for (std::size_t k = 0; k < problem.clients(); ++k)
    learners.push_back(std::make_unique<fl::QuadraticLearner>(
        problem, k, fed.local_iterations, seeds.make_rng("grad-noise", k),
        /*initial_value=*/3.0f));
  return learners;
}

// Replays the run's Byzantine PS placement (fl::FedMsRun's derivation).
std::vector<bool> byzantine_mask(const fl::FedMsConfig& fed) {
  std::vector<bool> mask(fed.servers, false);
  if (fed.byzantine_placement == "first") {
    for (std::size_t i = 0; i < fed.byzantine; ++i) mask[i] = true;
  } else {
    const core::SeedSequence seeds(fed.seed);
    core::Rng rng = seeds.make_rng("byz-placement");
    for (const std::size_t i :
         rng.sample_without_replacement(fed.servers, fed.byzantine))
      mask[i] = true;
  }
  return mask;
}

// Per-run filter observer: applies the optional under-trim plant, checks
// the envelope/finiteness oracle, and samples candidate models for the
// wire oracle.
struct FilterObserver {
  std::vector<bool> is_byzantine;
  bool attack_nonfinite = false;
  bool inject = false;
  bool inject_drift = false;
  bool inject_adaptive = false;
  bool adaptive_filter = false;  // the schedule's filter is adaptive[:...]
  std::size_t servers = 0;
  double beta = -1.0;  // < 0: filter is not trmean, never inject

  std::optional<OracleViolation> violation;
  std::size_t filter_events = 0;
  std::vector<fl::ModelVector> wire_sample;

  FilterObserver(const FuzzSchedule& schedule, const FuzzOptions& options)
      : is_byzantine(byzantine_mask(schedule.fed_config())),
        attack_nonfinite(byz::attack_traits(schedule.attack).nonfinite),
        inject(options.inject_under_trim),
        inject_drift(options.inject_mode_drift),
        inject_adaptive(options.inject_adaptive_undertrim),
        adaptive_filter(schedule.client_filter.rfind("adaptive", 0) == 0),
        servers(schedule.servers) {
    if (const auto b = fl::trmean_beta(schedule.client_filter)) beta = *b;
  }

  runtime::FilterHook hook() {
    return [this](const runtime::FilterEvent& event) {
      ++filter_events;
      if (inject && beta >= 0.0 && event.trim != fl::kNoTrim &&
          event.candidates.size() < servers) {
        // The PR 4 bug: re-derive the trim from β over the thinned set.
        const std::size_t bad =
            fl::beta_trim_count(beta, event.candidates.size());
        if (bad < event.trim && event.candidates.size() > 2 * bad)
          event.filtered = fl::trimmed_mean(event.candidates, bad);
      }
      if (inject_adaptive && adaptive_filter &&
          event.trim != fl::kNoTrim && event.trim > 0 &&
          event.candidates.size() > 2 * (event.trim - 1)) {
        // The estimator-under-shoot plant: the filtered model is rebuilt
        // with one trim fewer than the (honest, reported) estimate B̂.
        // Whenever B̂ exactly covered the Byzantine candidates, the
        // envelope oracle now sees an attacked value inside the mean.
        event.filtered = fl::trimmed_mean(event.candidates, event.trim - 1);
      }
      if (inject_drift && event.trim != fl::kNoTrim) {
        // The mode-drift plant: recompute the filter with the rounding
        // mode pinned to nearest while the run itself executes under the
        // schedule's ambient mode. When that mode is "nearest" this is a
        // bitwise no-op (the determinism contract guarantees recomputing
        // yields identical bits); under any directed mode the double sums
        // land on different ulps and the parity oracle catches the drift.
        const core::ScopedRoundingMode nearest(FE_TONEAREST);
        event.filtered = fl::trimmed_mean(event.candidates, event.trim);
      }
      if (wire_sample.size() < 3 && !event.candidates.empty())
        wire_sample.push_back(event.candidates.front());
      if (!violation)
        violation = check_filter_event(event, is_byzantine,
                                       attack_nonfinite);
    };
  }
};

struct AsyncCapture {
  runtime::AsyncRunResult result;
  std::vector<std::vector<std::uint32_t>> round_crcs;  // [round][client]
};

AsyncCapture run_async(const FuzzSchedule& schedule,
                       const data::QuadraticProblem& problem,
                       const runtime::RuntimeOptions& options,
                       FilterObserver* observer,
                       ScriptedFaults* scripted) {
  const fl::FedMsConfig fed = schedule.fed_config();
  AsyncCapture capture;
  runtime::AsyncFedMsRun run(fed, options, make_learners(problem, fed));
  if (scripted != nullptr) {
    scripted->reset();
    run.set_message_hook(scripted->hook());
  }
  if (observer != nullptr) run.set_filter_hook(observer->hook());
  run.set_round_callback(
      [&](std::uint64_t, const std::vector<fl::LearnerPtr>& learners) {
        capture.round_crcs.emplace_back();
        for (const auto& learner : learners)
          capture.round_crcs.back().push_back(
              transport::crc32c_floats(learner->parameters()));
      });
  capture.result = run.run();
  return capture;
}

FuzzOutcome run_parity(const FuzzSchedule& schedule,
                       const FuzzOptions& options) {
  const fl::FedMsConfig fed = schedule.fed_config();
  const data::QuadraticProblem problem = make_problem(schedule);

  // Sync baseline.
  std::vector<std::vector<std::uint32_t>> sync_crcs;
  fl::FedMsRun sync(fed, make_learners(problem, fed));
  sync.set_round_callback(
      [&](std::uint64_t, const std::vector<fl::LearnerPtr>& learners) {
        sync_crcs.emplace_back();
        for (const auto& learner : learners)
          sync_crcs.back().push_back(
              transport::crc32c_floats(learner->parameters()));
      });
  const fl::RunResult sync_result = sync.run();

  // Async run with telemetry spans captured for the stage-order oracle.
  FilterObserver observer(schedule, options);
  obs::reset();
  obs::set_enabled(true);
  const AsyncCapture async =
      run_async(schedule, problem, schedule.runtime_options(), &observer,
                /*scripted=*/nullptr);
  const std::vector<obs::SpanRecord> spans = obs::snapshot_spans();
  obs::set_enabled(false);

  FuzzOutcome outcome;
  outcome.trace_hash = async.result.trace_hash;
  outcome.filter_events = observer.filter_events;
  if (observer.violation) {
    outcome.violation = observer.violation;
    return outcome;
  }

  // Differential agreement, bit for bit.
  for (std::size_t r = 0; r < schedule.rounds; ++r) {
    for (std::size_t k = 0; k < schedule.clients; ++k) {
      if (sync_crcs[r][k] != async.round_crcs[r][k]) {
        outcome.violation = OracleViolation{
            "parity",
            format("r%zu client %zu: sync/async model CRC mismatch "
                   "(%08x vs %08x)",
                   r, k, sync_crcs[r][k], async.round_crcs[r][k])};
        return outcome;
      }
    }
    const fl::RoundRecord& s = sync_result.rounds[r];
    const fl::RoundRecord& a = async.result.rounds[r].base;
    if (!bits_equal(s.train_loss, a.train_loss) ||
        !bits_equal(s.eval_loss, a.eval_loss) ||
        !bits_equal(s.eval_accuracy, a.eval_accuracy)) {
      outcome.violation = OracleViolation{
          "parity", format("r%zu: sync/async loss or eval metrics "
                           "diverge (train %.17g vs %.17g)",
                           r, s.train_loss, a.train_loss)};
      return outcome;
    }
    if (s.uplink_bytes != a.uplink_bytes ||
        s.uplink_messages != a.uplink_messages ||
        s.downlink_bytes != a.downlink_bytes ||
        s.downlink_messages != a.downlink_messages) {
      outcome.violation = OracleViolation{
          "parity",
          format("r%zu: sync/async traffic accounting diverges "
                 "(up %llu/%llu vs %llu/%llu bytes/messages)",
                 r, static_cast<unsigned long long>(s.uplink_bytes),
                 static_cast<unsigned long long>(s.uplink_messages),
                 static_cast<unsigned long long>(a.uplink_bytes),
                 static_cast<unsigned long long>(a.uplink_messages))};
      return outcome;
    }
  }

  outcome.violation = check_trace_causality(async.result.trace,
                                            schedule.clients,
                                            schedule.rounds);
  if (!outcome.violation)
    outcome.violation = check_canonical_stage_order(spans, "async");
  if (!outcome.violation)
    outcome.violation = check_wire_roundtrip(observer.wire_sample);
  return outcome;
}

FuzzOutcome run_fault(const FuzzSchedule& schedule,
                      const FuzzOptions& options) {
  const data::QuadraticProblem problem = make_problem(schedule);
  ScriptedFaults scripted(schedule);

  // The causality oracle always scores membership against the scheduled
  // plan; the ghost-churn plant makes execution disagree with it by
  // dropping the churn events (round-keyed streams stay on — they were
  // derived before the strip — so only membership bookkeeping desyncs).
  const runtime::RuntimeOptions scheduled = schedule.runtime_options();
  runtime::RuntimeOptions executed = scheduled;
  if (options.inject_ghost_churn) executed.faults.churn.clear();

  FilterObserver first_observer(schedule, options);
  const AsyncCapture first =
      run_async(schedule, problem, executed, &first_observer, &scripted);
  // Replay determinism: the exact run again (fresh learners, reset event
  // counters, same hooks including any planted bug).
  FilterObserver second_observer(schedule, options);
  const AsyncCapture second =
      run_async(schedule, problem, executed, &second_observer, &scripted);

  FuzzOutcome outcome;
  outcome.trace_hash = first.result.trace_hash;
  outcome.filter_events = first_observer.filter_events;
  if (first_observer.violation) {
    outcome.violation = first_observer.violation;
    return outcome;
  }

  if (first.result.trace_hash != second.result.trace_hash) {
    outcome.violation = OracleViolation{
        "determinism",
        format("trace hash differs across identical runs "
               "(%016llx vs %016llx)",
               static_cast<unsigned long long>(first.result.trace_hash),
               static_cast<unsigned long long>(second.result.trace_hash))};
    return outcome;
  }
  for (std::size_t i = 0;
       i < std::min(first.result.trace.size(), second.result.trace.size());
       ++i) {
    if (first.result.trace[i] != second.result.trace[i]) {
      outcome.violation = OracleViolation{
          "determinism", format("trace diverges at line %zu: \"%s\" vs "
                                "\"%s\"",
                                i, first.result.trace[i].c_str(),
                                second.result.trace[i].c_str())};
      return outcome;
    }
  }
  if (first.round_crcs != second.round_crcs) {
    outcome.violation = OracleViolation{
        "determinism", "per-round model CRCs differ across identical runs"};
    return outcome;
  }

  outcome.violation =
      check_trace_causality(first.result.trace, schedule.clients,
                            schedule.rounds, &scheduled.faults);
  if (!outcome.violation)
    outcome.violation = check_wire_roundtrip(first_observer.wire_sample);
  return outcome;
}

FuzzOutcome run_transport(const FuzzSchedule& schedule) {
  const fl::FedMsConfig fed = schedule.fed_config();
  fl::WorkloadConfig workload;
  workload.samples = 320;
  workload.model = "mlp";
  workload.mlp_hidden = {8};

  std::vector<std::uint32_t> sync_crcs;
  fl::Experiment experiment = fl::make_experiment(workload, fed);
  experiment.run->set_round_callback(
      [&](std::uint64_t round, const std::vector<fl::LearnerPtr>& learners) {
        if (round + 1 != fed.rounds) return;
        for (const auto& learner : learners)
          sync_crcs.push_back(transport::crc32c_floats(learner->parameters()));
      });
  const fl::RunResult sync_result = experiment.run->run();

  transport::InMemoryHub hub(fed.upload_compression);
  hub.set_deterministic(true);
  const transport::TransportRunSummary summary =
      transport::run_transport_experiment(workload, fed, hub);

  FuzzOutcome outcome;
  const fl::RoundRecord& final_eval = sync_result.final_eval();
  if (!bits_equal(summary.mean_accuracy(), *final_eval.eval_accuracy) ||
      !bits_equal(summary.mean_eval_loss(), *final_eval.eval_loss)) {
    outcome.violation = OracleViolation{
        "transport",
        format("final eval diverges: accuracy %.17g vs %.17g",
               summary.mean_accuracy(), *final_eval.eval_accuracy)};
    return outcome;
  }
  for (std::size_t k = 0; k < summary.clients.size(); ++k) {
    if (summary.clients[k].model_crc != sync_crcs[k]) {
      outcome.violation = OracleViolation{
          "transport", format("client %zu final model CRC mismatch "
                              "(%08x vs %08x)",
                              k, summary.clients[k].model_crc,
                              sync_crcs[k])};
      return outcome;
    }
  }
  const auto totals = summary.data_totals();
  if (totals.uplink_messages != sync_result.uplink_total.messages ||
      totals.uplink_bytes != sync_result.uplink_total.bytes ||
      totals.downlink_messages != sync_result.downlink_total.messages ||
      totals.downlink_bytes != sync_result.downlink_total.bytes ||
      summary.corrupt_frames() != 0) {
    outcome.violation = OracleViolation{
        "transport",
        format("data-byte accounting diverges (up %llu/%llu vs "
               "%llu/%llu, corrupt %llu)",
               static_cast<unsigned long long>(totals.uplink_bytes),
               static_cast<unsigned long long>(totals.uplink_messages),
               static_cast<unsigned long long>(
                   sync_result.uplink_total.bytes),
               static_cast<unsigned long long>(
                   sync_result.uplink_total.messages),
               static_cast<unsigned long long>(summary.corrupt_frames()))};
    return outcome;
  }
  return outcome;
}

}  // namespace

FuzzOutcome run_schedule(const FuzzSchedule& schedule,
                         const FuzzOptions& options) {
  // Entire case — both execution paths and every oracle — runs under the
  // schedule's rounding mode; the caller's ambient mode is restored on
  // exit, so a corpus sweep can interleave modes freely.
  int fenv_mode = FE_TONEAREST;
  if (!core::parse_rounding_mode(schedule.rounding_mode, &fenv_mode))
    throw std::runtime_error("unknown rounding_mode \"" +
                             schedule.rounding_mode + "\"");
  const core::ScopedRoundingMode scoped(fenv_mode);
  switch (schedule.kind) {
    case ScheduleKind::kParity: return run_parity(schedule, options);
    case ScheduleKind::kFault: return run_fault(schedule, options);
    case ScheduleKind::kTransport: return run_transport(schedule);
  }
  return {};
}

std::string repro_json(const FuzzSchedule& schedule,
                       const OracleViolation& violation,
                       const FuzzOptions& options) {
  const std::string text = schedule.to_json();
  const std::size_t brace = text.rfind('}');
  std::ostringstream extra;
  extra << "  ,\"repro\": {\"oracle\": \"" << json_escape(violation.oracle)
        << "\", \"detail\": \"" << json_escape(violation.detail)
        << "\", \"inject_under_trim\": "
        << (options.inject_under_trim ? "true" : "false")
        << ", \"inject_ghost_churn\": "
        << (options.inject_ghost_churn ? "true" : "false")
        << ", \"inject_mode_drift\": "
        << (options.inject_mode_drift ? "true" : "false")
        << ", \"inject_adaptive_undertrim\": "
        << (options.inject_adaptive_undertrim ? "true" : "false") << "}\n";
  return text.substr(0, brace) + extra.str() + "}\n";
}

Repro load_repro(const std::string& text) {
  Repro repro;
  repro.schedule = FuzzSchedule::from_json(text);
  const Json root = Json::parse(text);
  if (const Json* r = root.find("repro")) {
    repro.oracle = r->at("oracle").as_string();
    repro.detail = r->at("detail").as_string();
    repro.options.inject_under_trim =
        r->at("inject_under_trim").as_bool();
    // find(): repro files written before these plants existed stay
    // loadable.
    if (const Json* ghost = r->find("inject_ghost_churn"))
      repro.options.inject_ghost_churn = ghost->as_bool();
    if (const Json* drift = r->find("inject_mode_drift"))
      repro.options.inject_mode_drift = drift->as_bool();
    if (const Json* undertrim = r->find("inject_adaptive_undertrim"))
      repro.options.inject_adaptive_undertrim = undertrim->as_bool();
  }
  return repro;
}

FuzzSchedule shrink_schedule(const FuzzSchedule& schedule,
                             const FuzzOptions& options,
                             const std::string& oracle, std::size_t* runs) {
  FuzzSchedule best = schedule;
  bool improved = true;
  while (improved && !best.events.empty()) {
    improved = false;
    for (std::size_t i = 0; i < best.events.size(); ++i) {
      FuzzSchedule candidate = best;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      // Deleting one event can orphan another (a recover whose crash is
      // gone, a round with every client churned out); such candidates are
      // not legal schedules — skip them instead of letting the runtime's
      // contract checks abort mid-shrink.
      if (!candidate.check_events().empty()) continue;
      if (runs != nullptr) ++*runs;
      const FuzzOutcome outcome = run_schedule(candidate, options);
      if (outcome.violation && outcome.violation->oracle == oracle) {
        best = std::move(candidate);
        improved = true;
        break;  // restart the scan over the smaller schedule
      }
    }
  }
  return best;
}

FuzzSchedule under_trim_scenario() {
  FuzzSchedule s;
  s.seed = 0;
  s.kind = ScheduleKind::kFault;
  s.clients = 2;
  s.servers = 5;
  s.byzantine = 1;
  s.rounds = 1;
  s.local_iterations = 1;
  s.upload = "full";
  s.client_filter = "trmean:0.2";
  s.attack = "signflip";
  s.byzantine_placement = "first";
  s.run_seed = 0x5eed0001;
  s.data_seed = 0x5eed0002;
  ScheduleEvent drop;
  drop.action = EventAction::kDrop;
  drop.round = 0;
  drop.from_server = true;
  drop.from = 4;  // an honest PS (placement "first" makes PS 0 Byzantine)
  drop.to_server = false;
  drop.to = 0;
  drop.kind = "broadcast";
  drop.occurrence = 0;
  s.events.push_back(drop);
  return s;
}

FuzzSchedule adaptive_under_trim_scenario() {
  FuzzSchedule s;
  s.seed = 0;
  s.kind = ScheduleKind::kFault;
  s.clients = 2;
  s.servers = 5;
  s.byzantine = 1;
  s.rounds = 1;
  s.local_iterations = 1;
  s.upload = "full";
  s.client_filter = "adaptive";
  s.attack = "signflip";
  s.byzantine_placement = "first";
  s.run_seed = 0x5eed0007;
  s.data_seed = 0x5eed0008;
  // Decoy the shrinker must strip: the estimator sees all five candidates
  // either way (client 1 merely loses one honest broadcast), so the
  // violation survives the drop's removal and the minimal schedule is
  // event-free — the plant lives in the estimator, not the fault plan.
  ScheduleEvent drop;
  drop.action = EventAction::kDrop;
  drop.round = 0;
  drop.from_server = true;
  drop.from = 4;  // an honest PS (placement "first" makes PS 0 Byzantine)
  drop.to_server = false;
  drop.to = 1;
  drop.kind = "broadcast";
  drop.occurrence = 0;
  s.events.push_back(drop);
  return s;
}

FuzzSchedule churn_ghost_scenario() {
  FuzzSchedule s;
  s.seed = 0;
  s.kind = ScheduleKind::kFault;
  s.clients = 3;
  s.servers = 3;
  s.byzantine = 1;
  s.rounds = 3;
  s.local_iterations = 1;
  s.upload = "full";
  s.client_filter = "trmean:0.34";
  s.attack = "noise";
  s.byzantine_placement = "first";
  s.run_seed = 0x5eed0003;
  s.data_seed = 0x5eed0004;

  ScheduleEvent leave;  // the one event the violation actually needs
  leave.action = EventAction::kLeave;
  leave.from = 1;
  leave.round = 1;
  s.events.push_back(leave);

  // Decoys the shrinker must strip. The crash/recover pair is chosen so
  // that deleting just the crash leaves an orphaned recover — an invalid
  // candidate the shrink loop must skip, not execute.
  ScheduleEvent crash;
  crash.action = EventAction::kCrash;
  crash.from_server = true;
  crash.from = 2;  // an honest PS (placement "first" makes PS 0 Byzantine)
  crash.round = 1;
  s.events.push_back(crash);
  ScheduleEvent recover;
  recover.action = EventAction::kRecover;
  recover.from_server = true;
  recover.from = 2;
  recover.round = 2;
  s.events.push_back(recover);
  ScheduleEvent drop;
  drop.action = EventAction::kDrop;
  drop.round = 0;
  drop.from_server = true;
  drop.from = 2;
  drop.to_server = false;
  drop.to = 0;
  drop.kind = "broadcast";
  drop.occurrence = 0;
  s.events.push_back(drop);
  return s;
}

FuzzSchedule mode_drift_scenario() {
  FuzzSchedule s;
  s.seed = 0;
  s.kind = ScheduleKind::kParity;
  s.clients = 5;
  s.servers = 5;
  s.byzantine = 1;
  s.rounds = 2;
  s.local_iterations = 1;
  // Sparse uploads give every honest PS a different client subset, so the
  // candidate columns hold DISTINCT values and the kept-window sums are
  // inexact — with "full" all honest broadcasts are identical and
  // 3v/3 = v is exact under every mode, hiding the plant.
  s.upload = "sparse";
  s.client_filter = "trmean:0.2";
  s.attack = "noise";
  s.byzantine_placement = "first";
  s.run_seed = 0x5eed0005;
  s.data_seed = 0x5eed0006;
  // The load-bearing knob: any directed mode exposes the plant. Under
  // "nearest" the same plant is a bitwise no-op and the case passes —
  // the self-test asserts both directions.
  s.rounding_mode = "downward";
  return s;
}

}  // namespace fedms::testing
