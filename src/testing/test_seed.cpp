#include "testing/test_seed.h"

#include <cstdio>
#include <cstdlib>

namespace fedms::testing {

namespace {

bool parse_seed(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

std::uint64_t test_seed(std::uint64_t fallback) {
  std::uint64_t value = 0;
  if (parse_seed(std::getenv("FEDMS_TEST_SEED"), &value)) return value;
  return fallback;
}

bool test_seed_overridden() {
  std::uint64_t value = 0;
  return parse_seed(std::getenv("FEDMS_TEST_SEED"), &value);
}

std::string seed_repro_hint(std::uint64_t seed,
                            const std::string& test_name) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(seed));
  return "seed=" + std::string(buffer) + "  repro: FEDMS_TEST_SEED=" +
         buffer + " ctest -R " + test_name + " --output-on-failure";
}

}  // namespace fedms::testing
