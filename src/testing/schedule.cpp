#include "testing/schedule.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/rng.h"
#include "core/rounding.h"
#include "testing/json_min.h"

namespace fedms::testing {

namespace {

std::string node_text(bool is_server, std::size_t index) {
  return (is_server ? "s" : "c") + std::to_string(index);
}

void parse_node(const std::string& text, bool* is_server,
                std::size_t* index) {
  if (text.size() < 2 || (text[0] != 'c' && text[0] != 's'))
    throw std::runtime_error("bad node \"" + text +
                             "\" (expected c<i> or s<i>)");
  *is_server = text[0] == 's';
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str() + 1, &end, 10);
  if (end == text.c_str() + 1 || *end != '\0')
    throw std::runtime_error("bad node index in \"" + text + "\"");
  *index = static_cast<std::size_t>(value);
}

std::string u64_text(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

EventAction action_from_string(const std::string& text) {
  if (text == "drop") return EventAction::kDrop;
  if (text == "delay") return EventAction::kDelay;
  if (text == "dup") return EventAction::kDuplicate;
  if (text == "crash") return EventAction::kCrash;
  if (text == "straggler") return EventAction::kStraggler;
  if (text == "join") return EventAction::kJoin;
  if (text == "leave") return EventAction::kLeave;
  if (text == "recover") return EventAction::kRecover;
  throw std::runtime_error("unknown schedule event action \"" + text + "\"");
}

ScheduleKind kind_from_string(const std::string& text) {
  if (text == "parity") return ScheduleKind::kParity;
  if (text == "fault") return ScheduleKind::kFault;
  if (text == "transport") return ScheduleKind::kTransport;
  throw std::runtime_error("unknown schedule kind \"" + text + "\"");
}

}  // namespace

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kParity: return "parity";
    case ScheduleKind::kFault: return "fault";
    case ScheduleKind::kTransport: return "transport";
  }
  return "?";
}

const char* to_string(EventAction action) {
  switch (action) {
    case EventAction::kDrop: return "drop";
    case EventAction::kDelay: return "delay";
    case EventAction::kDuplicate: return "dup";
    case EventAction::kCrash: return "crash";
    case EventAction::kStraggler: return "straggler";
    case EventAction::kJoin: return "join";
    case EventAction::kLeave: return "leave";
    case EventAction::kRecover: return "recover";
  }
  return "?";
}

std::string ScheduleEvent::to_string() const {
  std::ostringstream os;
  os << testing::to_string(action);
  if (matches_messages()) {
    os << " r" << round << ' ' << node_text(from_server, from) << "->"
       << node_text(to_server, to) << ' ' << kind << '#' << occurrence;
    if (action == EventAction::kDelay) os << " +" << seconds << 's';
  } else if (action == EventAction::kStraggler) {
    os << ' ' << node_text(from_server, from) << " x" << seconds;
  } else {  // crash / join / leave / recover
    os << ' ' << node_text(from_server, from) << "@r" << round;
  }
  return os.str();
}

fl::FedMsConfig FuzzSchedule::fed_config() const {
  fl::FedMsConfig fed;
  fed.clients = clients;
  fed.servers = servers;
  fed.byzantine = byzantine;
  fed.rounds = rounds;
  fed.local_iterations = local_iterations;
  fed.upload = upload;
  fed.client_filter = client_filter;
  fed.attack = attack;
  fed.byzantine_placement = byzantine_placement;
  fed.participation = participation;
  fed.eval_every = 1;
  fed.seed = run_seed;
  return fed;
}

runtime::RuntimeOptions FuzzSchedule::runtime_options() const {
  runtime::RuntimeOptions options;
  options.compute_seconds = compute_seconds;
  options.upload_window_seconds = upload_window_seconds;
  options.broadcast_timeout_seconds = broadcast_timeout_seconds;
  options.max_retries = max_retries;
  options.retry_backoff_seconds = retry_backoff_seconds;
  options.record_trace = true;
  for (const ScheduleEvent& event : events) {
    if (event.action == EventAction::kCrash) {
      options.faults.crashes.push_back(
          runtime::ServerCrash{event.from, event.round});
    } else if (event.action == EventAction::kStraggler) {
      auto& table = event.from_server ? options.faults.server_stragglers
                                      : options.faults.client_stragglers;
      table[event.from] = event.seconds;
    } else if (event.action == EventAction::kRecover) {
      options.faults.recoveries.push_back(
          runtime::ServerRecovery{event.from, event.round});
    } else if (event.action == EventAction::kJoin ||
               event.action == EventAction::kLeave) {
      options.faults.churn.push_back(runtime::ClientChurn{
          event.from, event.round, event.action == EventAction::kJoin});
    }
  }
  // Churn demands join-order-independent client streams; deriving the
  // flag (instead of storing it) keeps it out of the shrink space.
  options.round_keyed_streams = !options.faults.churn.empty();
  return options;
}

std::string FuzzSchedule::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"fedms_fuzz_schedule\": 1,\n";
  os << "  \"seed\": \"" << u64_text(seed) << "\",\n";
  os << "  \"kind\": \"" << testing::to_string(kind) << "\",\n";
  os << "  \"clients\": " << clients << ",\n";
  os << "  \"servers\": " << servers << ",\n";
  os << "  \"byzantine\": " << byzantine << ",\n";
  os << "  \"rounds\": " << rounds << ",\n";
  os << "  \"local_iterations\": " << local_iterations << ",\n";
  os << "  \"upload\": \"" << json_escape(upload) << "\",\n";
  os << "  \"client_filter\": \"" << json_escape(client_filter) << "\",\n";
  os << "  \"attack\": \"" << json_escape(attack) << "\",\n";
  os << "  \"byzantine_placement\": \"" << json_escape(byzantine_placement)
     << "\",\n";
  os << "  \"participation\": " << json_double(participation) << ",\n";
  os << "  \"run_seed\": \"" << u64_text(run_seed) << "\",\n";
  os << "  \"data_seed\": \"" << u64_text(data_seed) << "\",\n";
  os << "  \"rounding_mode\": \"" << json_escape(rounding_mode) << "\",\n";
  os << "  \"compute_seconds\": " << json_double(compute_seconds) << ",\n";
  os << "  \"upload_window_seconds\": " << json_double(upload_window_seconds)
     << ",\n";
  os << "  \"broadcast_timeout_seconds\": "
     << json_double(broadcast_timeout_seconds) << ",\n";
  os << "  \"max_retries\": " << max_retries << ",\n";
  os << "  \"retry_backoff_seconds\": " << json_double(retry_backoff_seconds)
     << ",\n";
  os << "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ScheduleEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"action\": \""
       << testing::to_string(e.action) << "\"";
    if (e.matches_messages()) {
      os << ", \"round\": " << e.round << ", \"from\": \""
         << node_text(e.from_server, e.from) << "\", \"to\": \""
         << node_text(e.to_server, e.to) << "\", \"kind\": \""
         << json_escape(e.kind) << "\", \"occurrence\": " << e.occurrence;
      if (e.action == EventAction::kDelay)
        os << ", \"seconds\": " << json_double(e.seconds);
    } else if (e.action == EventAction::kStraggler) {
      os << ", \"node\": \"" << node_text(e.from_server, e.from)
         << "\", \"factor\": " << json_double(e.seconds);
    } else {  // crash / join / leave / recover
      os << ", \"node\": \"" << node_text(e.from_server, e.from)
         << "\", \"round\": " << e.round;
    }
    os << "}";
  }
  os << (events.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

FuzzSchedule FuzzSchedule::from_json(const std::string& text) {
  const Json root = Json::parse(text);
  FuzzSchedule s;
  s.seed = root.at("seed").as_u64();
  s.kind = kind_from_string(root.at("kind").as_string());
  s.clients = root.at("clients").as_size();
  s.servers = root.at("servers").as_size();
  s.byzantine = root.at("byzantine").as_size();
  s.rounds = root.at("rounds").as_size();
  s.local_iterations = root.at("local_iterations").as_size();
  s.upload = root.at("upload").as_string();
  s.client_filter = root.at("client_filter").as_string();
  s.attack = root.at("attack").as_string();
  s.byzantine_placement = root.at("byzantine_placement").as_string();
  s.participation = root.at("participation").as_number();
  s.run_seed = root.at("run_seed").as_u64();
  s.data_seed = root.at("data_seed").as_u64();
  // Older repro files predate the numerics axis; they ran under nearest.
  if (const Json* mode = root.find("rounding_mode")) {
    s.rounding_mode = mode->as_string();
    int parsed = 0;
    if (!core::parse_rounding_mode(s.rounding_mode, &parsed))
      throw std::runtime_error("unknown rounding_mode \"" + s.rounding_mode +
                               "\" (nearest|upward|downward|towardzero)");
  }
  s.compute_seconds = root.at("compute_seconds").as_number();
  s.upload_window_seconds = root.at("upload_window_seconds").as_number();
  s.broadcast_timeout_seconds =
      root.at("broadcast_timeout_seconds").as_number();
  s.max_retries = root.at("max_retries").as_size();
  s.retry_backoff_seconds = root.at("retry_backoff_seconds").as_number();
  for (const Json& item : root.at("events").items()) {
    ScheduleEvent e;
    e.action = action_from_string(item.at("action").as_string());
    if (e.matches_messages()) {
      e.round = item.at("round").as_size();
      parse_node(item.at("from").as_string(), &e.from_server, &e.from);
      parse_node(item.at("to").as_string(), &e.to_server, &e.to);
      e.kind = item.at("kind").as_string();
      e.occurrence = item.at("occurrence").as_size();
      if (const Json* seconds = item.find("seconds"))
        e.seconds = seconds->as_number();
    } else {
      parse_node(item.at("node").as_string(), &e.from_server, &e.from);
      if (e.action == EventAction::kStraggler)
        e.seconds = item.at("factor").as_number();
      else
        e.round = item.at("round").as_size();
    }
    s.events.push_back(std::move(e));
  }
  // Re-validate everything that reaches contract-checked constructors, so
  // a hand-edited repro file reports instead of aborting.
  if (const std::string error = s.fed_config().check(); !error.empty())
    throw std::runtime_error("repro schedule invalid: " + error);
  if (const std::string error = s.check_events(); !error.empty())
    throw std::runtime_error("repro schedule invalid: " + error);
  return s;
}

std::string FuzzSchedule::check_events() const {
  const runtime::FaultPlan plan = runtime_options().faults;
  if (const std::string topo = plan.check_topology(
          clients, servers, std::numeric_limits<std::uint64_t>::max());
      !topo.empty())
    return topo;
  if (!plan.churn.empty())
    for (std::uint64_t r = 0; r < rounds; ++r)
      if (plan.active_client_count(clients, r) == 0)
        return "every client has left by round " + std::to_string(r);
  return "";
}

FuzzSchedule generate_schedule(std::uint64_t seed) {
  const core::SeedSequence seeds(seed);
  core::Rng rng = seeds.make_rng("fuzz-schedule");
  FuzzSchedule s;
  s.seed = seed;

  // Numerics axis on its own stream: consuming a draw from the main
  // schedule RNG would shift every later draw and silently rewrite the
  // schedule of every historical corpus seed. Biased toward nearest (the
  // production mode) with each directed mode at 10%.
  {
    core::Rng mode_rng = seeds.make_rng("fuzz-rounding-mode");
    const double mode_draw = mode_rng.uniform();
    s.rounding_mode = mode_draw < 0.70   ? "nearest"
                      : mode_draw < 0.80 ? "upward"
                      : mode_draw < 0.90 ? "downward"
                                         : "towardzero";
  }

  const double kind_draw = rng.uniform();
  s.kind = kind_draw < 0.45   ? ScheduleKind::kParity
           : kind_draw < 0.88 ? ScheduleKind::kFault
                              : ScheduleKind::kTransport;

  if (s.kind == ScheduleKind::kTransport) {
    // Tiny NN workload over real threads — keep the topology small.
    s.clients = 2 + rng.uniform_index(3);  // 2..4
    s.servers = 2 + rng.uniform_index(2);  // 2..3
    s.rounds = 2;
  } else {
    s.clients = 2 + rng.uniform_index(6);  // 2..7
    s.servers = 2 + rng.uniform_index(5);  // 2..6
    s.rounds = 1 + rng.uniform_index(3);   // 1..3
  }
  // Strict minority: 2B < P (B = 0 included — the benign corner).
  s.byzantine = rng.uniform_index((s.servers + 1) / 2);
  s.local_iterations = 1 + rng.uniform_index(3);

  const char* uploads[] = {"sparse", "sparse", "full", "roundrobin",
                           "multi:2"};
  s.upload = uploads[rng.uniform_index(5)];

  // Client filter: mostly the paper's coupled trmean (β = B/P), sometimes
  // an over-trimming β, sometimes the undefended mean baseline.
  const double filter_draw = rng.uniform();
  char beta_text[32];
  if (filter_draw < 0.70) {
    std::snprintf(beta_text, sizeof beta_text, "trmean:%.6g",
                  double(s.byzantine) / double(s.servers));
    s.client_filter = beta_text;
  } else if (filter_draw < 0.85) {
    const double beta =
        std::min(0.49, double(s.byzantine + 1) / double(s.servers));
    std::snprintf(beta_text, sizeof beta_text, "trmean:%.6g", beta);
    s.client_filter = beta_text;
  } else {
    s.client_filter = "mean";
  }

  // Defense-zoo axis on its own stream (same rationale as the numerics
  // axis: a draw from the main RNG would shift every later draw and
  // rewrite the schedule of every historical corpus seed). A fraction of
  // parity/fault cases swap the trmean/mean filter for another zoo
  // member; the transport kind keeps the paper's filters — its oracle
  // asserts exact cross-engine equality on a real NN workload, so the
  // cheap filters keep that lane fast while parity/fault cover the zoo.
  {
    core::Rng defense_rng = seeds.make_rng("fuzz-defense");
    if (s.kind != ScheduleKind::kTransport && defense_rng.uniform() < 0.35) {
      const std::size_t keep =
          s.servers > 2 * s.byzantine ? s.servers - 2 * s.byzantine : 1;
      std::vector<std::string> zoo = {
          "median", "geomedian", "adaptive",
          "krum:" + std::to_string(s.byzantine),
          "multikrum:" + std::to_string(s.byzantine) + ":" +
              std::to_string(keep),
          "fedgreed:" + std::to_string(keep)};
      if (s.servers >= 4 * s.byzantine + 3)
        zoo.push_back("bulyan:" + std::to_string(s.byzantine));
      s.client_filter = zoo[defense_rng.uniform_index(zoo.size())];
    }
  }

  if (s.byzantine == 0) {
    s.attack = "benign";
  } else if (s.kind == ScheduleKind::kTransport) {
    // The transport path asserts exact eval/CRC equality, so keep attacks
    // finite and non-silent (NaN metrics never compare equal to
    // themselves; a silent PS thins candidate sets).
    const char* attacks[] = {"noise",     "random", "safeguard",
                             "backward",  "zero",   "signflip",
                             "collusion", "alie",   "edgeoftrim",
                             "inconsistent"};
    s.attack = attacks[rng.uniform_index(10)];
  } else if (s.kind == ScheduleKind::kParity) {
    // No "crash": a silent PS leaves clients short of the async quorum
    // while the sync loop happily filters the thinner set — a real
    // semantic difference, not a parity bug.
    const char* attacks[] = {"benign",   "noise", "random",   "safeguard",
                             "backward", "zero",  "signflip", "collusion",
                             "nan",      "alie",  "edgeoftrim",
                             "inconsistent"};
    s.attack = attacks[rng.uniform_index(12)];
  } else {
    const char* attacks[] = {"benign",    "noise", "random",   "safeguard",
                             "backward",  "zero",  "signflip", "collusion",
                             "nan",       "crash", "alie",     "edgeoftrim",
                             "inconsistent"};
    s.attack = attacks[rng.uniform_index(13)];
  }
  s.byzantine_placement = rng.uniform() < 0.8 ? "first" : "random";

  s.run_seed = rng() | 1;  // nonzero
  s.data_seed = rng() | 1;

  if (s.kind == ScheduleKind::kTransport) {
    if (rng.uniform() < 0.4)
      s.participation = 0.5 + 0.25 * rng.uniform_index(2);  // 0.5 | 0.75
    return s;  // fault-free by construction; defaults for the windows
  }

  // Timeout windows (loose enough that the fault-free parity case always
  // beats every deadline: compute + ~0.011 s transfer < upload window).
  const double windows[] = {0.15, 0.25, 0.4};
  s.upload_window_seconds = windows[rng.uniform_index(3)];
  s.broadcast_timeout_seconds = windows[rng.uniform_index(3)];
  s.max_retries = rng.uniform_index(3);  // 0..2
  if (s.kind == ScheduleKind::kParity) return s;

  // kFault: explicit scripted events.
  const std::size_t message_events = rng.uniform_index(7);  // 0..6
  for (std::size_t i = 0; i < message_events; ++i) {
    ScheduleEvent e;
    const double action_draw = rng.uniform();
    e.action = action_draw < 0.45   ? EventAction::kDrop
               : action_draw < 0.80 ? EventAction::kDelay
                                    : EventAction::kDuplicate;
    e.round = rng.uniform_index(s.rounds);
    const double direction = rng.uniform();
    if (direction < 0.55) {  // broadcast: server -> client
      e.from_server = true;
      e.from = rng.uniform_index(s.servers);
      e.to_server = false;
      e.to = rng.uniform_index(s.clients);
      e.kind = rng.uniform() < 0.8 ? "broadcast" : "any";
    } else {  // upload: client -> server
      e.from_server = false;
      e.from = rng.uniform_index(s.clients);
      e.to_server = true;
      e.to = rng.uniform_index(s.servers);
      e.kind = rng.uniform() < 0.8 ? "upload" : "any";
    }
    e.occurrence = rng.uniform() < 0.85 ? 0 : 1;
    if (e.action == EventAction::kDelay) {
      const double delays[] = {0.05, 0.2, 0.5, 1.0};
      e.seconds = delays[rng.uniform_index(4)];
    }
    s.events.push_back(std::move(e));
  }
  if (rng.uniform() < 0.3) {  // a crashed PS, sometimes with a recovery
    ScheduleEvent e;
    e.action = EventAction::kCrash;
    e.from_server = true;
    e.from = rng.uniform_index(s.servers);
    e.round = rng.uniform_index(s.rounds);
    const std::size_t crashed = e.from;
    const std::uint64_t crash_round = e.round;
    s.events.push_back(std::move(e));
    if (crash_round + 1 < s.rounds && rng.uniform() < 0.5) {
      ScheduleEvent r;
      r.action = EventAction::kRecover;
      r.from_server = true;
      r.from = crashed;
      r.round = crash_round + 1 +
                rng.uniform_index(s.rounds - crash_round - 1);
      s.events.push_back(std::move(r));
    }
  }
  if (s.clients >= 3 && rng.uniform() < 0.35) {
    // Client churn: one client leaves, maybe rejoining later. Limiting
    // churn to a single client keeps >= 1 client active in every round
    // by construction (the runtime rejects an all-absent round).
    ScheduleEvent e;
    e.action = EventAction::kLeave;
    e.from_server = false;
    e.from = rng.uniform_index(s.clients);
    e.round = rng.uniform_index(s.rounds);
    const std::size_t churned = e.from;
    const std::uint64_t leave_round = e.round;
    s.events.push_back(std::move(e));
    if (leave_round + 1 < s.rounds && rng.uniform() < 0.6) {
      ScheduleEvent j;
      j.action = EventAction::kJoin;
      j.from_server = false;
      j.from = churned;
      j.round = leave_round + 1 +
                rng.uniform_index(s.rounds - leave_round - 1);
      s.events.push_back(std::move(j));
    }
  }
  if (rng.uniform() < 0.35) {  // a straggling client
    ScheduleEvent e;
    e.action = EventAction::kStraggler;
    e.from_server = false;
    e.from = rng.uniform_index(s.clients);
    e.seconds = 1.5 + rng.uniform() * 3.0;
    s.events.push_back(std::move(e));
  }
  if (rng.uniform() < 0.15) {  // a straggling server
    ScheduleEvent e;
    e.action = EventAction::kStraggler;
    e.from_server = true;
    e.from = rng.uniform_index(s.servers);
    e.seconds = 1.5 + rng.uniform() * 2.0;
    s.events.push_back(std::move(e));
  }
  return s;
}

ScriptedFaults::ScriptedFaults(const FuzzSchedule& schedule) {
  for (const ScheduleEvent& event : schedule.events)
    if (event.matches_messages()) entries_.push_back(Entry{event, 0});
}

void ScriptedFaults::reset() {
  for (Entry& entry : entries_) entry.seen = 0;
}

runtime::MessageHook ScriptedFaults::hook() {
  return [this](const runtime::MessageEvent& m)
             -> std::optional<runtime::FaultInjector::LinkFate> {
    const char* kind = m.kind == net::MessageKind::kModelUpload ? "upload"
                       : m.kind == net::MessageKind::kModelBroadcast
                           ? "broadcast"
                           : "retry";
    std::optional<runtime::FaultInjector::LinkFate> fate;
    for (Entry& entry : entries_) {
      const ScheduleEvent& e = entry.event;
      if (e.round != m.round) continue;
      if (e.from_server != (m.from.kind == net::NodeKind::kServer) ||
          e.from != m.from.index)
        continue;
      if (e.to_server != (m.to.kind == net::NodeKind::kServer) ||
          e.to != m.to.index)
        continue;
      if (e.kind != "any" && e.kind != kind) continue;
      if (entry.seen++ != e.occurrence) continue;
      if (!fate) fate.emplace();
      switch (e.action) {
        case EventAction::kDrop: fate->dropped = true; break;
        case EventAction::kDelay: fate->extra_delay += e.seconds; break;
        case EventAction::kDuplicate: fate->copies = 2; break;
        default: break;
      }
    }
    return fate;
  };
}

}  // namespace fedms::testing
