#include "testing/json_min.h"

#include <cctype>
#include <cfenv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/rounding.h"

namespace fedms::testing {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("json parse error at byte " +
                           std::to_string(offset) + ": " + what);
}

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json value is not a ") + wanted);
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_space();
    const char c = peek();
    Json value;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      value.type_ = Json::Type::kString;
      value.string_ = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      value.type_ = Json::Type::kBool;
      value.bool_ = true;
      return value;
    }
    if (consume_literal("false")) {
      value.type_ = Json::Type::kBool;
      value.bool_ = false;
      return value;
    }
    if (consume_literal("null")) return value;
    if (c == '-' || (c >= '0' && c <= '9')) {
      // Decimal→binary conversion is rounding-mode-sensitive; a repro or
      // schedule file must parse to the same bits whatever fenv mode the
      // run executes under, so the conversion is pinned to nearest.
      const core::ScopedRoundingMode nearest(FE_TONEAREST);
      char* end = nullptr;
      value.type_ = Json::Type::kNumber;
      value.number_ = std::strtod(text_.c_str() + pos_, &end);
      if (end == text_.c_str() + pos_) fail(pos_, "bad number");
      pos_ = static_cast<std::size_t>(end - text_.c_str());
      return value;
    }
    fail(pos_, "unexpected character");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: fail(pos_ - 1, "unsupported escape");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json value;
    value.type_ = Json::Type::kArray;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array_.push_back(parse_value());
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json value;
    value.type_ = Json::Type::kObject;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_space();
      const std::size_t key_offset = pos_;
      std::string key = parse_string();
      for (const auto& [existing, unused] : value.object_)
        if (existing == key)
          fail(key_offset, "duplicate object key \"" + key + "\"");
      skip_space();
      expect(':');
      value.object_.emplace_back(std::move(key), parse_value());
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string");
  return string_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kString) type_error("u64 string");
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(string_.c_str(), &end, 0);
  if (end == string_.c_str() || *end != '\0')
    throw std::runtime_error("json string \"" + string_ +
                             "\" is not a u64");
  return value;
}

std::size_t Json::as_size() const {
  const double value = as_number();
  const auto narrowed = static_cast<std::size_t>(value);
  if (value < 0.0 || double(narrowed) != value)
    throw std::runtime_error("json number is not a non-negative integer");
  return narrowed;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array");
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object");
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr)
    throw std::runtime_error("json object is missing key \"" + key + "\"");
  return *value;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  // Both directions of the round-trip are pinned to nearest: snprintf's
  // binary→decimal shortening and the strtod check drift by one digit in
  // the last place under directed fenv modes, which would make a file
  // written under one mode parse to different bits under another.
  const core::ScopedRoundingMode nearest(FE_TONEAREST);
  char buffer[40];
  // Shortest representation that strtod round-trips exactly: try
  // increasing precision until the parse gives the bits back.
  for (int precision = 9; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace fedms::testing
