// Minimal JSON reader for the fuzz harness's repro files.
//
// The library's other JSON needs are write-only (telemetry, traces), so
// the repo deliberately carries no general-purpose parser. Repro replay is
// the one place we must read JSON back, and the input is always a file the
// harness itself wrote — this parser therefore supports exactly the JSON
// subset the writer emits (objects, arrays, strings with simple escapes,
// finite numbers, true/false/null) and throws std::runtime_error
// with a byte offset on anything else. 64-bit seeds are stored as strings
// ("0x..."), never as numbers, so no precision is lost to double.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fedms::testing {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses one JSON document (trailing garbage is an error). Throws
  // std::runtime_error with the byte offset of the problem.
  static Json parse(const std::string& text);

  Type type() const { return type_; }

  // Typed accessors; each throws std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  // Unsigned 64-bit from a string field ("0x..." or decimal).
  std::uint64_t as_u64() const;
  // Number narrowed to size_t; throws if negative or non-integral.
  std::size_t as_size() const;

  const std::vector<Json>& items() const;  // array elements
  // Object lookup: nullptr when absent / at() throws when absent.
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;
  // Object members in document order. Keys are unique (the parser rejects
  // duplicates) — this is how strict schema validators reject unknown keys.
  const std::vector<std::pair<std::string, Json>>& members() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  friend class JsonParser;
};

// Escapes a string for embedding in a JSON document (adds no quotes).
std::string json_escape(const std::string& text);

// Shortest round-trippable formatting for a double (%.17g, trimmed).
std::string json_double(double value);

}  // namespace fedms::testing
