// Single test-seed override for every randomized test in the repo.
//
// Randomized tests (fuzz schedules, RNG stream sweeps, property checks)
// derive all their randomness from one root seed so a failure is a pure
// function of that seed. The seed comes from the FEDMS_TEST_SEED
// environment variable when set (decimal or 0x-hex), otherwise from the
// test's fixed default — CI stays deterministic, and a failure seen once
// can be replayed anywhere with
//
//   FEDMS_TEST_SEED=<seed> ctest -R <test> --output-on-failure
//
// Every failure message produced by the harness embeds that command via
// seed_repro_hint(), so the repro is copy-pasteable from the test log.
#pragma once

#include <cstdint>
#include <string>

namespace fedms::testing {

// The root seed: FEDMS_TEST_SEED when set and parseable, else `fallback`.
std::uint64_t test_seed(std::uint64_t fallback = 1);

// True when FEDMS_TEST_SEED overrides the default.
bool test_seed_overridden();

// One-line, copy-pasteable repro command for a failing randomized test.
std::string seed_repro_hint(std::uint64_t seed, const std::string& test_name);

}  // namespace fedms::testing
