#include "metrics/classification.h"

#include <iomanip>
#include <ostream>

#include "core/contracts.h"

namespace fedms::metrics {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  FEDMS_EXPECTS(num_classes > 0);
}

void ConfusionMatrix::add(std::size_t predicted, std::size_t actual) {
  FEDMS_EXPECTS(predicted < classes_ && actual < classes_);
  ++counts_[actual * classes_ + predicted];
  ++total_;
}

void ConfusionMatrix::add_batch(const std::vector<std::size_t>& predicted,
                                const std::vector<std::size_t>& actual) {
  FEDMS_EXPECTS(predicted.size() == actual.size());
  for (std::size_t i = 0; i < predicted.size(); ++i)
    add(predicted[i], actual[i]);
}

std::size_t ConfusionMatrix::count(std::size_t actual,
                                   std::size_t predicted) const {
  FEDMS_EXPECTS(predicted < classes_ && actual < classes_);
  return counts_[actual * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c)
    correct += counts_[c * classes_ + c];
  return double(correct) / double(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  FEDMS_EXPECTS(cls < classes_);
  std::size_t predicted_as = 0;
  for (std::size_t a = 0; a < classes_; ++a)
    predicted_as += counts_[a * classes_ + cls];
  if (predicted_as == 0) return 0.0;
  return double(counts_[cls * classes_ + cls]) / double(predicted_as);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  FEDMS_EXPECTS(cls < classes_);
  std::size_t actual_count = 0;
  for (std::size_t p = 0; p < classes_; ++p)
    actual_count += counts_[cls * classes_ + p];
  if (actual_count == 0) return 0.0;
  return double(counts_[cls * classes_ + cls]) / double(actual_count);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) sum += f1(c);
  return sum / double(classes_);
}

void ConfusionMatrix::print(std::ostream& os) const {
  os << "confusion matrix (rows = actual, cols = predicted):\n";
  for (std::size_t a = 0; a < classes_; ++a) {
    for (std::size_t p = 0; p < classes_; ++p)
      os << std::setw(6) << counts_[a * classes_ + p];
    os << "   | recall " << std::fixed << std::setprecision(3) << recall(a)
       << '\n';
  }
  os << "accuracy " << std::setprecision(4) << accuracy() << ", macro-F1 "
     << macro_f1() << '\n';
}

}  // namespace fedms::metrics
