// Minimal JSON export of run telemetry, for consumption by external
// plotting/analysis tooling without a CSV parsing step.
//
// Only the subset of JSON this library needs to *emit* is implemented —
// objects, arrays, numbers, strings (escaped), booleans, null — via a
// small writer; there is intentionally no parser.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/fedms.h"

namespace fedms::metrics {

// Serializes a run as {"config": ..., "rounds": [...], "traffic": ...}.
void write_run_json(std::ostream& os, const fl::FedMsConfig& config,
                    const fl::RunResult& result);
void save_run_json(const std::string& path, const fl::FedMsConfig& config,
                   const fl::RunResult& result);

// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& text);

}  // namespace fedms::metrics
