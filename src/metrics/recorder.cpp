#include "metrics/recorder.h"

#include <cfenv>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "core/rounding.h"

namespace fedms::metrics {

Series series_from_run(const std::string& figure, const std::string& name,
                       const std::string& attack,
                       const fl::RunResult& result) {
  Series series{figure, name, attack, {}};
  for (const auto& record : result.rounds) {
    if (!record.eval_accuracy.has_value()) continue;
    series.points.push_back(SeriesPoint{
        record.round, *record.eval_accuracy,
        record.eval_loss.value_or(0.0), record.train_loss});
  }
  return series;
}

void Recorder::add(Series series) { series_.push_back(std::move(series)); }

void Recorder::write_csv(std::ostream& os) const {
  // Decimal formatting follows the ambient fenv mode; CSVs emitted by a
  // run pinned to a directed mode must still be byte-identical to the
  // nearest-mode run of the same data.
  const core::ScopedRoundingMode nearest(FE_TONEAREST);
  os << "figure,series,attack,round,accuracy,loss,train_loss\n";
  for (const auto& s : series_)
    for (const auto& p : s.points)
      os << s.figure << ',' << s.name << ',' << s.attack << ',' << p.round
         << ',' << p.accuracy << ',' << p.loss << ',' << p.train_loss
         << '\n';
}

void Recorder::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("fedms: cannot write " + path);
  write_csv(os);
}

}  // namespace fedms::metrics
