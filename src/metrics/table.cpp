#include "metrics/table.h"

#include <cfenv>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/contracts.h"
#include "core/rounding.h"

namespace fedms::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FEDMS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FEDMS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(int(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double value, int precision) {
  // Decimal formatting obeys the ambient fenv mode; emitted tables (and
  // CSV built on fmt) must be byte-identical whatever mode a run pins.
  const core::ScopedRoundingMode nearest(FE_TONEAREST);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace fedms::metrics
