// Fixed-width console table printing for the bench harness headers and
// summary blocks.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fedms::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedms::metrics
