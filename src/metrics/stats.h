// Small statistics helpers for summarizing repeated runs.
#pragma once

#include <cstddef>
#include <vector>

namespace fedms::metrics {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1), 0 if n < 2
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& values);

// Linear least-squares slope of y against x (used to check the O(1/T)
// rate: log(gap) vs log(t) should have slope ≈ -1).
double regression_slope(const std::vector<double>& x,
                        const std::vector<double>& y);

// Mean of the final `window` values of a series (smoothed "final accuracy").
double tail_mean(const std::vector<double>& values, std::size_t window);

}  // namespace fedms::metrics
