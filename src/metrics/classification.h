// Classification quality beyond plain accuracy: confusion matrix and
// per-class precision/recall/F1. Used by the examples to inspect *what* a
// Byzantine attack breaks (typically a subset of classes collapses first)
// rather than just how much.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace fedms::metrics {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t predicted, std::size_t actual);
  void add_batch(const std::vector<std::size_t>& predicted,
                 const std::vector<std::size_t>& actual);

  std::size_t num_classes() const { return classes_; }
  std::size_t total() const { return total_; }
  // counts()[actual][predicted]
  std::size_t count(std::size_t actual, std::size_t predicted) const;

  double accuracy() const;
  // Per-class one-vs-rest metrics; 0 when the denominator is empty.
  double precision(std::size_t cls) const;
  double recall(std::size_t cls) const;
  double f1(std::size_t cls) const;
  // Unweighted mean over classes (macro averaging).
  double macro_f1() const;

  void print(std::ostream& os) const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // row-major [actual][predicted]
};

}  // namespace fedms::metrics
