// Experiment series recording and CSV/TSV output.
//
// The figure benches print one row per (series, round) in a fixed schema so
// their stdout regenerates the paper's plotted series and can be piped
// straight into any plotting tool:
//   figure,series,attack,round,accuracy,loss,train_loss
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fl/fedms.h"

namespace fedms::metrics {

struct SeriesPoint {
  std::uint64_t round = 0;
  double accuracy = 0.0;
  double loss = 0.0;
  double train_loss = 0.0;
};

struct Series {
  std::string figure;  // e.g. "fig2a"
  std::string name;    // e.g. "Fed-MS", "Fed-MS-", "VanillaFL"
  std::string attack;  // e.g. "noise"
  std::vector<SeriesPoint> points;
};

// Extracts the evaluated rounds of a run into a Series.
Series series_from_run(const std::string& figure, const std::string& name,
                       const std::string& attack,
                       const fl::RunResult& result);

class Recorder {
 public:
  void add(Series series);
  const std::vector<Series>& series() const { return series_; }

  // Writes the CSV header plus every point of every series.
  void write_csv(std::ostream& os) const;
  // Same, into a file (overwrites). Throws on I/O failure.
  void write_csv_file(const std::string& path) const;

 private:
  std::vector<Series> series_;
};

}  // namespace fedms::metrics
