#include "metrics/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace fedms::metrics {

namespace {

// JSON has no NaN/Infinity; emit null for non-finite values.
void write_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  os << buffer;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_run_json(std::ostream& os, const fl::FedMsConfig& config,
                    const fl::RunResult& result) {
  os << "{\n  \"config\": {"
     << "\"clients\": " << config.clients
     << ", \"servers\": " << config.servers
     << ", \"byzantine\": " << config.byzantine
     << ", \"local_iterations\": " << config.local_iterations
     << ", \"rounds\": " << config.rounds
     << ", \"upload\": \"" << json_escape(config.upload) << '"'
     << ", \"client_filter\": \"" << json_escape(config.client_filter) << '"'
     << ", \"server_aggregator\": \""
     << json_escape(config.server_aggregator) << '"'
     << ", \"attack\": \"" << json_escape(config.attack) << '"'
     << ", \"byzantine_clients\": " << config.byzantine_clients
     << ", \"client_attack\": \"" << json_escape(config.client_attack) << '"'
     << ", \"compression\": \"" << json_escape(config.upload_compression)
     << '"' << ", \"participation\": ";
  write_number(os, config.participation);
  os << ", \"seed\": " << config.seed << "},\n  \"rounds\": [";
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    os << (i ? ",\n    " : "\n    ") << "{\"round\": " << r.round
       << ", \"train_loss\": ";
    write_number(os, r.train_loss);
    os << ", \"eval_accuracy\": ";
    if (r.eval_accuracy)
      write_number(os, *r.eval_accuracy);
    else
      os << "null";
    os << ", \"eval_loss\": ";
    if (r.eval_loss)
      write_number(os, *r.eval_loss);
    else
      os << "null";
    os << ", \"uplink_bytes\": " << r.uplink_bytes
       << ", \"downlink_bytes\": " << r.downlink_bytes
       << ", \"upload_seconds\": ";
    write_number(os, r.upload_seconds);
    os << ", \"broadcast_seconds\": ";
    write_number(os, r.broadcast_seconds);
    os << "}";
  }
  os << "\n  ],\n  \"traffic\": {"
     << "\"uplink_messages\": " << result.uplink_total.messages
     << ", \"uplink_bytes\": " << result.uplink_total.bytes
     << ", \"downlink_messages\": " << result.downlink_total.messages
     << ", \"downlink_bytes\": " << result.downlink_total.bytes
     << ", \"dropped_messages\": "
     << result.uplink_total.dropped_messages +
            result.downlink_total.dropped_messages
     << ", \"simulated_comm_seconds\": ";
  write_number(os, result.simulated_comm_seconds);
  os << "}\n}\n";
}

void save_run_json(const std::string& path, const fl::FedMsConfig& config,
                   const fl::RunResult& result) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("fedms: cannot write " + path);
  write_run_json(os, config, result);
}

}  // namespace fedms::metrics
