#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "core/contracts.h"

namespace fedms::metrics {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / double(values.size());
  if (values.size() >= 2) {
    double sq = 0.0;
    for (const double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / double(values.size() - 1));
  }
  return s;
}

double regression_slope(const std::vector<double>& x,
                        const std::vector<double>& y) {
  FEDMS_EXPECTS(x.size() == y.size());
  FEDMS_EXPECTS(x.size() >= 2);
  const double n = double(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  FEDMS_EXPECTS(std::abs(denom) > 1e-12);
  return (n * sxy - sx * sy) / denom;
}

double tail_mean(const std::vector<double>& values, std::size_t window) {
  FEDMS_EXPECTS(!values.empty());
  const std::size_t n = std::min(window == 0 ? values.size() : window,
                                 values.size());
  double sum = 0.0;
  for (std::size_t i = values.size() - n; i < values.size(); ++i)
    sum += values[i];
  return sum / double(n);
}

}  // namespace fedms::metrics
