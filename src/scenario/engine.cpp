#include "scenario/engine.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "byz/attack.h"
#include "core/contracts.h"
#include "core/rng.h"
#include "data/partition.h"
#include "fl/nn_learner.h"
#include "runtime/telemetry.h"
#include "testing/json_min.h"

namespace fedms::scenario {

ScenarioOutcome run_scenario(const Scenario& scenario, std::uint64_t seed,
                             const std::string& defense) {
  FEDMS_EXPECTS(scenario.check().empty());
  ScenarioOutcome outcome;
  outcome.name = scenario.name;
  outcome.seed = seed;

  fl::FedMsConfig fed = scenario.fed;
  fed.seed = seed;
  if (!defense.empty()) fed.client_filter = defense;
  outcome.defense = fed.client_filter;

  runtime::RuntimeOptions options;
  options.faults = scenario.compile_fault_plan(seed);
  options.round_keyed_streams = true;
  // The recorded trace (absent/recovered markers included) is as
  // deterministic as the rest of the outcome and small at scenario scale;
  // keeping it lets tests and post-mortems see the churn the hash attests.
  options.record_trace = true;

  const fl::Workload data = fl::make_workload(scenario.workload, fed);
  auto learners = fl::make_nn_learners(data, scenario.workload, fed);
  // Raw learner pointers survive the move into the run (the pointees are
  // stable); alpha drift retargets their sample pools through them.
  std::vector<fl::NnLearner*> nn;
  nn.reserve(learners.size());
  for (const auto& learner : learners)
    nn.push_back(dynamic_cast<fl::NnLearner*>(learner.get()));

  runtime::AsyncFedMsRun run(fed, options, std::move(learners));
  fl::install_fedgreed_scorer(run.client_filter(), data, scenario.workload,
                              fed);
  const core::SeedSequence seeds(seed);
  run.set_round_start_hook([&](std::uint64_t round) {
    for (const ScenarioEvent& event : scenario.events) {
      if (event.round != round) continue;
      if (event.type == ScenarioEvent::Type::kAttackSwitch) {
        // Only the dissemination edge changes; benign PSs stay benign and
        // every PS keeps its aggregate, history, and RNG stream.
        for (auto& server : run.mutable_servers())
          if (server.is_byzantine())
            server.set_attack(byz::make_attack(event.attack));
      } else if (event.type == ScenarioEvent::Type::kAlphaDrift) {
        // Repartition with the new α; the draw is keyed by (seed, round)
        // so drift at round t is the same regardless of earlier events.
        core::Rng rng = seeds.make_rng("alpha-drift", round);
        const data::PartitionIndices pools = data::dirichlet_partition(
            data.train, fed.clients, event.value, rng,
            scenario.workload.batch_size / 4 + 1);
        for (std::size_t k = 0; k < nn.size(); ++k)
          if (nn[k] != nullptr) nn[k]->set_pool(pools[k]);
      }
    }
  });

  outcome.result = run.run();
  outcome.config = fed;
  outcome.options = run.options();
  return outcome;
}

std::string ScenarioOutcome::to_json() const {
  std::ostringstream run_json;
  runtime::write_async_run_json(run_json, config, options, result);
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof seed_hex, "0x%llx",
                static_cast<unsigned long long>(seed));
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof hash_hex, "0x%llx",
                static_cast<unsigned long long>(result.trace_hash));
  std::ostringstream os;
  os << "{\n  \"scenario\": \"" << testing::json_escape(name) << "\",\n"
     << "  \"defense\": \"" << testing::json_escape(defense) << "\",\n"
     << "  \"seed\": \"" << seed_hex << "\",\n"
     << "  \"trace_hash\": \"" << hash_hex << "\",\n"
     << "  \"run\": " << run_json.str() << "\n}\n";
  return os.str();
}

}  // namespace fedms::scenario
