// Declarative churn scenarios: a JSON schema scripting per-round events —
// client join/leave, PS crash and recovery with state handoff, attack-mix
// switches, Dirichlet-α drift, and participation-rate changes — compiled
// into the runtime's FaultPlan event machinery and executed by
// AsyncFedMsRun (see engine.h).
//
// Schema (all keys optional unless noted; unknown or duplicate keys are
// rejected with a one-line error):
//
//   {
//     "name": "churn-demo",
//     "rounds": 12, "clients": 10, "servers": 5, "byzantine": 1,
//     "attack": "signflip", "defense": "trmean:0.2",
//     "local_iterations": 3, "upload": "sparse", "eval_every": 1,
//     "workload": { "samples": 512, "feature_dimension": 16,
//                   "classes": 10, "dirichlet_alpha": 0.5,
//                   "model": "mlp", "batch_size": 16,
//                   "learning_rate": 0.3, "eval_sample_cap": 128 },
//     "events": [
//       {"round": 3, "type": "leave",         "client": 2},
//       {"round": 5, "type": "join",          "client": 2},
//       {"round": 4, "type": "ps_crash",      "server": 1},
//       {"round": 6, "type": "ps_recover",    "server": 1},
//       {"round": 7, "type": "attack_switch", "attack": "noise"},
//       {"round": 8, "type": "alpha_drift",   "alpha": 0.1},
//       {"round": 9, "type": "participation", "rate": 0.8}
//     ]
//   }
//
// Membership semantics: join/leave take effect at the start of their
// round; a participation event sets the per-round Bernoulli participation
// rate from its round onward (draws are a pure function of (seed, round,
// client), so they are independent of join order and of each other).
// Attack switches retarget the dissemination-edge behavior of the
// Byzantine PSs only; alpha drift repartitions every client's local
// dataset with the new Dirichlet α.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/config.h"
#include "fl/experiment.h"
#include "runtime/fault.h"
#include "testing/json_min.h"

namespace fedms::scenario {

struct ScenarioEvent {
  enum class Type {
    kJoin,
    kLeave,
    kPsCrash,
    kPsRecover,
    kAttackSwitch,
    kAlphaDrift,
    kParticipation,
  };
  Type type = Type::kJoin;
  std::uint64_t round = 0;
  std::size_t node = 0;  // client (join/leave) or server (ps_*)
  std::string attack;    // attack_switch payload
  double value = 0.0;    // alpha (alpha_drift) or rate (participation)
};

struct Scenario {
  std::string name = "scenario";
  // Topology/protocol knobs land here; scenario JSON overrides a subset
  // (rounds, clients, servers, byzantine, attack, defense, ...).
  fl::FedMsConfig fed;
  fl::WorkloadConfig workload;
  std::vector<ScenarioEvent> events;

  // One-line error ("" = valid): fed.check() plus event bounds (rounds,
  // node indices, alpha/rate ranges, attack names, recover-after-crash,
  // one event per (type, node, round), and >= 1 client present every
  // round under the explicit join/leave schedule).
  std::string check() const;

  // Expands join/leave/ps_crash/ps_recover plus participation-rate spans
  // into a runtime::FaultPlan. Participation draws are Bernoulli per
  // (seed, round, client), diff-encoded into churn events; if a round
  // would end up with no active client, the lowest-indexed present
  // client is kept active. Precondition: check() is empty.
  runtime::FaultPlan compile_fault_plan(std::uint64_t seed) const;

  // Strict parse: unknown keys, wrong types, malformed events, and any
  // check() violation throw std::runtime_error with a one-line message.
  static Scenario from_json(const testing::Json& json);
  static Scenario parse(const std::string& text);
  // Reads and parses the file; the path is cited in errors.
  static Scenario load(const std::string& path);
};

}  // namespace fedms::scenario
