// Scenario execution: one declarative Scenario + one seed + one defense
// spec → an event-driven run with churn applied, wrapped in a
// deterministic JSON outcome.
//
// The engine builds the Table-II NN workload, compiles the scenario's
// events into a FaultPlan, and drives AsyncFedMsRun with a round-start
// hook that applies the events FaultPlan cannot express: attack-mix
// switches (Byzantine PSs swap their dissemination-edge attack; their
// private RNG streams continue uninterrupted) and Dirichlet-α drift
// (every client's local index pool is repartitioned; mini-batch streams
// continue uninterrupted). Scenario runs always use round-keyed client
// streams (RuntimeOptions::round_keyed_streams), so the outcome is a
// pure function of (scenario, seed, defense) — independent of join
// order, sweep batching, and thread count.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/async_fedms.h"
#include "scenario/scenario.h"

namespace fedms::scenario {

struct ScenarioOutcome {
  std::string name;
  std::string defense;
  std::uint64_t seed = 0;
  fl::FedMsConfig config;          // the resolved per-run config
  runtime::RuntimeOptions options; // includes the compiled fault plan
  runtime::AsyncRunResult result;

  // Fully deterministic JSON (virtual times only, no wall clock):
  // {"scenario", "defense", "seed", "trace_hash", "run": {...}} where
  // "run" is runtime::write_async_run_json's document.
  std::string to_json() const;
};

// Runs `scenario` under `seed`. A non-empty `defense` overrides the
// scenario's client filter (the sweep's defense axis).
ScenarioOutcome run_scenario(const Scenario& scenario, std::uint64_t seed,
                             const std::string& defense = "");

}  // namespace fedms::scenario
