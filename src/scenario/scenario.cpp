#include "scenario/scenario.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "byz/attack.h"
#include "core/contracts.h"
#include "core/rng.h"
#include "fl/aggregators.h"

namespace fedms::scenario {

namespace {

using testing::Json;

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("bad scenario: " + what);
}

std::uint64_t as_round(const Json& json, const char* key) {
  const Json* value = json.find(key);
  if (value == nullptr) bad(std::string("event is missing \"") + key + "\"");
  return static_cast<std::uint64_t>(value->as_size());
}

std::size_t event_index(const Json& json, const char* key,
                        const std::string& type) {
  const Json* value = json.find(key);
  if (value == nullptr)
    bad("\"" + type + "\" event needs a \"" + key + "\" index");
  return value->as_size();
}

// Per-key dispatch keeps the parse strict: every member must be consumed
// by exactly one case, so typos and stale keys fail instead of silently
// running the default.
void apply_top_level(Scenario& scenario, const std::string& key,
                     const Json& value);
void apply_workload(fl::WorkloadConfig& workload, const std::string& key,
                    const Json& value);
ScenarioEvent parse_event(const Json& json);

void apply_top_level(Scenario& scenario, const std::string& key,
                     const Json& value) {
  if (key == "name") {
    scenario.name = value.as_string();
    if (scenario.name.empty()) bad("\"name\" must be non-empty");
  } else if (key == "rounds") {
    scenario.fed.rounds = value.as_size();
  } else if (key == "clients") {
    scenario.fed.clients = value.as_size();
  } else if (key == "servers") {
    scenario.fed.servers = value.as_size();
  } else if (key == "byzantine") {
    scenario.fed.byzantine = value.as_size();
  } else if (key == "attack") {
    scenario.fed.attack = value.as_string();
  } else if (key == "defense") {
    scenario.fed.client_filter = value.as_string();
  } else if (key == "local_iterations") {
    scenario.fed.local_iterations = value.as_size();
  } else if (key == "upload") {
    scenario.fed.upload = value.as_string();
  } else if (key == "eval_every") {
    scenario.fed.eval_every = value.as_size();
  } else if (key == "workload") {
    for (const auto& [wkey, wvalue] : value.members())
      apply_workload(scenario.workload, wkey, wvalue);
  } else if (key == "events") {
    for (const Json& event : value.items())
      scenario.events.push_back(parse_event(event));
  } else {
    bad("unknown key \"" + key + "\"");
  }
}

void apply_workload(fl::WorkloadConfig& workload, const std::string& key,
                    const Json& value) {
  if (key == "samples") {
    workload.samples = value.as_size();
  } else if (key == "feature_dimension") {
    workload.feature_dimension = value.as_size();
  } else if (key == "classes") {
    workload.classes = value.as_size();
  } else if (key == "dirichlet_alpha") {
    workload.dirichlet_alpha = value.as_number();
  } else if (key == "model") {
    workload.model = value.as_string();
  } else if (key == "batch_size") {
    workload.batch_size = value.as_size();
  } else if (key == "learning_rate") {
    workload.learning_rate = value.as_number();
  } else if (key == "eval_sample_cap") {
    workload.eval_sample_cap = value.as_size();
  } else {
    bad("unknown workload key \"" + key + "\"");
  }
}

ScenarioEvent parse_event(const Json& json) {
  const Json* type_value = json.find("type");
  if (type_value == nullptr) bad("event is missing \"type\"");
  const std::string type = type_value->as_string();
  ScenarioEvent event;
  event.round = as_round(json, "round");
  std::vector<std::string> allowed = {"type", "round"};
  if (type == "join" || type == "leave") {
    event.type = type == "join" ? ScenarioEvent::Type::kJoin
                                : ScenarioEvent::Type::kLeave;
    event.node = event_index(json, "client", type);
    allowed.push_back("client");
  } else if (type == "ps_crash" || type == "ps_recover") {
    event.type = type == "ps_crash" ? ScenarioEvent::Type::kPsCrash
                                    : ScenarioEvent::Type::kPsRecover;
    event.node = event_index(json, "server", type);
    allowed.push_back("server");
  } else if (type == "attack_switch") {
    event.type = ScenarioEvent::Type::kAttackSwitch;
    const Json* attack = json.find("attack");
    if (attack == nullptr) bad("\"attack_switch\" event needs \"attack\"");
    event.attack = attack->as_string();
    allowed.push_back("attack");
  } else if (type == "alpha_drift") {
    event.type = ScenarioEvent::Type::kAlphaDrift;
    const Json* alpha = json.find("alpha");
    if (alpha == nullptr) bad("\"alpha_drift\" event needs \"alpha\"");
    event.value = alpha->as_number();
    allowed.push_back("alpha");
  } else if (type == "participation") {
    event.type = ScenarioEvent::Type::kParticipation;
    const Json* rate = json.find("rate");
    if (rate == nullptr) bad("\"participation\" event needs \"rate\"");
    event.value = rate->as_number();
    allowed.push_back("rate");
  } else {
    bad("unknown event type \"" + type + "\"");
  }
  for (const auto& [key, unused] : json.members()) {
    bool known = false;
    for (const std::string& name : allowed) known |= name == key;
    if (!known)
      bad("\"" + type + "\" event has unknown key \"" + key + "\"");
  }
  return event;
}

const char* type_name(ScenarioEvent::Type type) {
  switch (type) {
    case ScenarioEvent::Type::kJoin: return "join";
    case ScenarioEvent::Type::kLeave: return "leave";
    case ScenarioEvent::Type::kPsCrash: return "ps_crash";
    case ScenarioEvent::Type::kPsRecover: return "ps_recover";
    case ScenarioEvent::Type::kAttackSwitch: return "attack_switch";
    case ScenarioEvent::Type::kAlphaDrift: return "alpha_drift";
    case ScenarioEvent::Type::kParticipation: return "participation";
  }
  return "?";
}

// Presence under the *explicit* join/leave schedule only (participation
// draws layer on top in compile_fault_plan). Row r holds round r.
std::vector<std::vector<char>> presence_matrix(const Scenario& scenario) {
  runtime::FaultPlan explicit_churn;
  for (const ScenarioEvent& event : scenario.events) {
    if (event.type == ScenarioEvent::Type::kJoin ||
        event.type == ScenarioEvent::Type::kLeave)
      explicit_churn.churn.push_back(
          {event.node, event.round,
           event.type == ScenarioEvent::Type::kJoin});
  }
  std::vector<std::vector<char>> present(
      scenario.fed.rounds, std::vector<char>(scenario.fed.clients, 1));
  for (std::uint64_t r = 0; r < scenario.fed.rounds; ++r)
    for (std::size_t k = 0; k < scenario.fed.clients; ++k)
      present[r][k] = explicit_churn.client_active(k, r) ? 1 : 0;
  return present;
}

}  // namespace

std::string Scenario::check() const {
  if (name.empty()) return "name must be non-empty";
  if (const std::string fed_error = fed.check(); !fed_error.empty())
    return fed_error;
  // fed.check() covers topology ranges but not the filter spec grammar;
  // validate it here so a bad "defense" reports instead of aborting in
  // the aggregator factory mid-run.
  if (const std::string spec_error =
          fl::check_aggregator_spec(fed.client_filter);
      !spec_error.empty())
    return spec_error;
  runtime::FaultPlan topology;
  for (const ScenarioEvent& event : events) {
    if (event.round >= fed.rounds)
      return std::string(type_name(event.type)) + " event at round " +
             std::to_string(event.round) + " is past the last round " +
             std::to_string(fed.rounds - 1);
    switch (event.type) {
      case ScenarioEvent::Type::kJoin:
      case ScenarioEvent::Type::kLeave:
        topology.churn.push_back(
            {event.node, event.round,
             event.type == ScenarioEvent::Type::kJoin});
        break;
      case ScenarioEvent::Type::kPsCrash:
        topology.crashes.push_back({event.node, event.round});
        break;
      case ScenarioEvent::Type::kPsRecover:
        topology.recoveries.push_back({event.node, event.round});
        break;
      case ScenarioEvent::Type::kAttackSwitch:
        if (const std::string bad_name = byz::check_attack_name(event.attack);
            !bad_name.empty())
          return bad_name;
        break;
      case ScenarioEvent::Type::kAlphaDrift:
        if (!(event.value > 0.0))
          return "alpha_drift alpha must be > 0";
        break;
      case ScenarioEvent::Type::kParticipation:
        if (!(event.value > 0.0 && event.value <= 1.0))
          return "participation rate must be in (0, 1]";
        break;
    }
  }
  if (const std::string topo =
          topology.check_topology(fed.clients, fed.servers, fed.rounds);
      !topo.empty())
    return topo;
  // One attack/alpha/participation event per round each — two switches in
  // the same round have no defined order.
  for (std::size_t i = 0; i < events.size(); ++i)
    for (std::size_t j = i + 1; j < events.size(); ++j)
      if (events[i].type == events[j].type &&
          events[i].round == events[j].round &&
          (events[i].type == ScenarioEvent::Type::kAttackSwitch ||
           events[i].type == ScenarioEvent::Type::kAlphaDrift ||
           events[i].type == ScenarioEvent::Type::kParticipation))
        return std::string("two ") + type_name(events[i].type) +
               " events at round " + std::to_string(events[i].round);
  const auto present = presence_matrix(*this);
  for (std::uint64_t r = 0; r < fed.rounds; ++r) {
    bool any = false;
    for (std::size_t k = 0; k < fed.clients; ++k) any |= present[r][k] != 0;
    if (!any)
      return "every client has left by round " + std::to_string(r);
  }
  return "";
}

runtime::FaultPlan Scenario::compile_fault_plan(std::uint64_t seed) const {
  FEDMS_EXPECTS(check().empty());
  runtime::FaultPlan plan;
  for (const ScenarioEvent& event : events) {
    if (event.type == ScenarioEvent::Type::kPsCrash)
      plan.crashes.push_back({event.node, event.round});
    else if (event.type == ScenarioEvent::Type::kPsRecover)
      plan.recoveries.push_back({event.node, event.round});
  }
  // Active = present (explicit join/leave) AND participating (Bernoulli at
  // the rate in force that round). Each draw is keyed by (seed, round,
  // client), so it is independent of membership history and of sibling
  // clients — the stream-discipline contract.
  const auto present = presence_matrix(*this);
  const core::SeedSequence seeds(seed);
  std::vector<std::vector<char>> active = present;
  bool any_participation = false;
  for (std::uint64_t r = 0; r < fed.rounds; ++r) {
    // Latest participation event at or before r wins (keyed on the event
    // round, so the list order in the file is irrelevant).
    double rate = 1.0;
    std::uint64_t best = 0;
    bool found = false;
    for (const ScenarioEvent& event : events) {
      if (event.type != ScenarioEvent::Type::kParticipation ||
          event.round > r)
        continue;
      if (!found || event.round >= best) {
        best = event.round;
        rate = event.value;
      }
      found = true;
    }
    if (!found || rate >= 1.0) continue;
    any_participation = true;
    const core::SeedSequence round_seeds(seeds.derive("participation", r));
    for (std::size_t k = 0; k < fed.clients; ++k) {
      if (!present[r][k]) continue;
      core::Rng rng = round_seeds.make_rng("client", k);
      active[r][k] = rng.bernoulli(rate) ? 1 : 0;
    }
    // Never let a round go dark: keep the lowest-indexed present client.
    bool any = false;
    for (std::size_t k = 0; k < fed.clients; ++k) any |= active[r][k] != 0;
    if (!any)
      for (std::size_t k = 0; k < fed.clients; ++k)
        if (present[r][k]) {
          active[r][k] = 1;
          break;
        }
  }
  // Diff-encode the activity matrix into churn events: a leave at round 0
  // covers clients absent from the start; later rounds emit an event only
  // on a transition. No churn and full participation leave the plan's
  // churn list empty (static membership stays on the fast path).
  bool static_membership = !any_participation;
  for (const ScenarioEvent& event : events)
    static_membership &= event.type != ScenarioEvent::Type::kJoin &&
                         event.type != ScenarioEvent::Type::kLeave;
  if (static_membership) return plan;
  for (std::size_t k = 0; k < fed.clients; ++k) {
    if (!active[0][k]) plan.churn.push_back({k, 0, false});
    for (std::uint64_t r = 1; r < fed.rounds; ++r)
      if (active[r][k] != active[r - 1][k])
        plan.churn.push_back({k, r, active[r][k] != 0});
  }
  return plan;
}

Scenario Scenario::from_json(const Json& json) {
  if (json.type() != Json::Type::kObject)
    bad("top level must be an object");
  Scenario scenario;
  // Scenario defaults differ from the paper's Table-II CLI defaults: a
  // scenario file states its own topology, so start from a small shape
  // and let every key override.
  scenario.fed.clients = 10;
  scenario.fed.servers = 5;
  scenario.fed.byzantine = 1;
  scenario.fed.rounds = 10;
  scenario.fed.attack = "signflip";
  scenario.workload.samples = 512;
  scenario.workload.feature_dimension = 16;
  scenario.workload.batch_size = 16;
  scenario.workload.eval_sample_cap = 128;
  for (const auto& [key, value] : json.members())
    apply_top_level(scenario, key, value);
  if (const std::string error = scenario.check(); !error.empty())
    bad(error);
  return scenario;
}

Scenario Scenario::parse(const std::string& text) {
  return from_json(Json::parse(text));
}

Scenario Scenario::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

}  // namespace fedms::scenario
