#include "core/stopwatch.h"

namespace fedms::core {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace fedms::core
