#include "core/thread_pool.h"

#include <atomic>
#include <exception>

namespace fedms::core {

ThreadPool::ThreadPool(std::size_t worker_count) {
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Per-call state shared between the caller and the worker tasks. Held by
// shared_ptr so a worker that picks its task up late (after parallel_for
// already observed completion and returned) still touches live memory.
struct ParallelForState {
  explicit ParallelForState(std::size_t total) : n(total) {}

  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::function<void(std::size_t)> body;

  void run_chunk() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == n) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>(n);
  state->body = body;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t w = 0; w < workers_.size(); ++w)
      tasks_.push([state] { state->run_chunk(); });
  }
  cv_.notify_all();
  state->run_chunk();  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock,
                        [&] { return state->done.load() >= state->n; });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace fedms::core
