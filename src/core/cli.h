// Tiny declarative command-line flag parser used by the bench and example
// binaries (`--rounds 60 --alpha 10 --attack noise`).
//
// Flags are registered with a default and a help string; `parse` consumes
// `--name value` and `--name=value` forms, supports `--help`, and rejects
// unknown flags so typos in experiment sweeps fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fedms::core {

class CliFlags {
 public:
  explicit CliFlags(std::string program_description)
      : description_(std::move(program_description)) {}

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  // Parses argv. Returns false (after printing usage) if --help was given or
  // on a parse error; callers should then exit. Exits with the parse
  // diagnostic already printed to stderr.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  void print_usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace fedms::core
