// Lightweight precondition/postcondition contracts in the spirit of the
// C++ Core Guidelines GSL `Expects`/`Ensures`.
//
// Violations are programming errors, not runtime conditions the caller is
// expected to handle, so they terminate via `std::abort` after printing the
// failing expression and location. They stay enabled in release builds: this
// library simulates Byzantine faults on purpose, and silent memory stomps
// would invalidate every experiment.
#pragma once

#include <cstdlib>

namespace fedms::core {

// Prints a contract-violation diagnostic to stderr and aborts.
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);

}  // namespace fedms::core

#define FEDMS_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::fedms::core::contract_failure("Precondition", #cond, __FILE__,       \
                                      __LINE__);                             \
  } while (0)

#define FEDMS_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::fedms::core::contract_failure("Postcondition", #cond, __FILE__,      \
                                      __LINE__);                             \
  } while (0)

#define FEDMS_ASSERT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::fedms::core::contract_failure("Invariant", #cond, __FILE__,          \
                                      __LINE__);                             \
  } while (0)
