#include "core/rounding.h"

#include <cstdio>
#include <cstdlib>

// GCC parses but ignores the pragma (it warns); -frounding-math on this TU
// (src/core/CMakeLists.txt) is what actually stops FP motion across the
// fesetround boundary there.
#if defined(__clang__)
#pragma STDC FENV_ACCESS ON
#endif

namespace fedms::core {

ScopedRoundingMode::ScopedRoundingMode(int mode) : saved_(std::fegetround()) {
  std::fesetround(mode);
}

ScopedRoundingMode::~ScopedRoundingMode() { std::fesetround(saved_); }

const int* all_rounding_modes() {
  static const int modes[kRoundingModeCount] = {FE_TONEAREST, FE_UPWARD,
                                                FE_DOWNWARD, FE_TOWARDZERO};
  return modes;
}

const char* rounding_mode_name(int mode) {
  switch (mode) {
    case FE_TONEAREST: return "nearest";
    case FE_UPWARD: return "upward";
    case FE_DOWNWARD: return "downward";
    case FE_TOWARDZERO: return "towardzero";
  }
  return "?";
}

bool parse_rounding_mode(const std::string& text, int* mode) {
  if (text == "nearest") return *mode = FE_TONEAREST, true;
  if (text == "upward") return *mode = FE_UPWARD, true;
  if (text == "downward") return *mode = FE_DOWNWARD, true;
  if (text == "towardzero") return *mode = FE_TOWARDZERO, true;
  return false;
}

std::string check_rounding_mode_spec(const std::string& spec) {
  int mode = FE_TONEAREST;
  if (spec.empty() || parse_rounding_mode(spec, &mode)) return "";
  return "unknown rounding mode \"" + spec +
         "\" (expected nearest | upward | downward | towardzero)";
}

namespace {

// Pre-main: FEDMS_ROUNDING_MODE=<nearest|upward|downward|towardzero> pins
// the process-wide mode before any test or tool code runs — threads
// created later inherit it ([cfenv]) — so scripts/check.sh can run the
// entire unit suite under each mode without touching every test binary.
// Runs in every binary that uses ScopedRoundingMode (the ctor above is
// out-of-line in this TU for exactly that reason). A malformed value is a
// hard error: silently training under the wrong mode would defeat the
// sweep.
const int g_env_rounding_mode = [] {
  const char* text = std::getenv("FEDMS_ROUNDING_MODE");
  if (text == nullptr || *text == '\0') return std::fegetround();
  int mode = FE_TONEAREST;
  if (!parse_rounding_mode(text, &mode)) {
    std::fprintf(stderr,
                 "FEDMS_ROUNDING_MODE: unknown mode \"%s\" (expected "
                 "nearest | upward | downward | towardzero)\n",
                 text);
    std::exit(1);
  }
  std::fesetround(mode);
  return mode;
}();

}  // namespace

}  // namespace fedms::core
