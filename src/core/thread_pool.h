// Fixed-size thread pool with a parallel-for helper.
//
// The FEEL simulator trains K client models per round; those local trainings
// are embarrassingly parallel, so `Client` fan-out runs through this pool.
// With `worker_count == 0` the pool degrades to inline execution on the
// calling thread, which is the default on single-core hosts and keeps the
// per-client RNG streams identical regardless of parallelism.
//
// Floating-point caveat ([cfenv]/C11 F.8.4): each worker thread captures
// the floating-point environment of the thread that CONSTRUCTED the pool,
// at construction time. A caller that switched rounding modes after the
// pool was built therefore must not assume its mode inside tasks —
// numeric kernels that fan out through parallel_for re-establish the
// caller's mode per task with core::ScopedRoundingMode (see
// sharded_by_coordinate in fl/aggregators.cpp and the conv batch fan-out
// in tensor/conv_im2col.cpp). The determinism contract in ARCHITECTURE.md
// makes this a requirement for any new parallel kernel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedms::core {

class ThreadPool {
 public:
  // worker_count == 0 -> run tasks inline (deterministic, no threads).
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  // Runs body(i) for i in [0, n). Blocks until every iteration finished.
  // Exceptions thrown by `body` propagate (the first one captured).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fedms::core
