#include "core/contracts.h"

#include <cstdio>

namespace fedms::core {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line) {
  std::fprintf(stderr, "[fedms] %s violated: %s (%s:%d)\n", kind, expr, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fedms::core
