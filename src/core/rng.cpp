#include "core/rng.h"

#include <cmath>

#include "core/contracts.h"

namespace fedms::core {

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state is the one forbidden fixed point of xoshiro; SplitMix64
  // cannot produce four consecutive zeros, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
    state_[0] = 0x9e3779b97f4a7c15ULL;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FEDMS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  FEDMS_EXPECTS(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(kTwoPi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  FEDMS_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::gamma(double shape) {
  FEDMS_EXPECTS(shape > 0.0);
  // Marsaglia & Tsang (2000). For shape < 1, boost via Gamma(shape+1) and a
  // uniform power correction.
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

bool Rng::bernoulli(double p) {
  FEDMS_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FEDMS_EXPECTS(k <= n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    using std::swap;
    const std::size_t j = i + uniform_index(n - i);
    swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::uint64_t SeedSequence::derive(std::string_view tag,
                                   std::uint64_t index) const {
  // FNV-1a over the tag, then mix in root and index through SplitMix64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = root_ ^ h;
  (void)splitmix64(state);
  state ^= index * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

Rng SeedSequence::make_rng(std::string_view tag, std::uint64_t index) const {
  return Rng(derive(tag, index));
}

}  // namespace fedms::core
