// Deterministic random-number generation for reproducible experiments.
//
// Every stochastic decision in the library (dataset synthesis, Dirichlet
// partitioning, mini-batch sampling, sparse PS selection, attack noise)
// draws from an `Rng` derived from a single root seed through `SeedSequence`,
// so a run is a pure function of its root seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64 —
// small, fast, and statistically strong; we deliberately avoid
// `std::mt19937` whose seeding and distribution implementations differ
// across standard libraries, which would break cross-toolchain
// reproducibility of the figures.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace fedms::core {

// SplitMix64: used to expand seeds; also a fine standalone 64-bit mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** engine. Satisfies std::uniform_random_bit_generator so it can
// be plugged into <random> distributions if ever needed, though the library
// ships its own distributions for reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four 256-bit state words by running SplitMix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Precondition: n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box–Muller (caches the spare deviate).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  // Gamma(shape, 1) via Marsaglia–Tsang; used by the Dirichlet partitioner.
  double gamma(double shape);
  // Bernoulli draw.
  bool bernoulli(double p);

  // Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  // k distinct indices drawn uniformly from [0, n) (partial Fisher–Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Derives statistically independent child seeds from a root seed plus a
// string tag and integer index, so e.g. client 7's round-3 mini-batch stream
// never collides with the attack-noise stream of PS 2.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t root_seed) : root_(root_seed) {}

  std::uint64_t root() const { return root_; }

  // Deterministic child seed for (tag, index).
  std::uint64_t derive(std::string_view tag, std::uint64_t index = 0) const;

  // Convenience: an Rng seeded by derive(tag, index).
  Rng make_rng(std::string_view tag, std::uint64_t index = 0) const;

 private:
  std::uint64_t root_;
};

}  // namespace fedms::core
