// Explicit fenv.h rounding-mode control — the determinism contract's
// foundation (ARCHITECTURE.md "Determinism contract").
//
// Every differential oracle in the repo (sync-vs-async parity, sim-vs-node
// --verify, sweep --jobs equality, the fuzz harness) demands bit-identical
// floats. That only holds when the FPU rounding mode is part of the
// contract: the same pinned reduction order produces different — but still
// deterministic — bits under FE_UPWARD than under FE_TONEAREST, so every
// compared execution must run under the *same* mode, and mode-sensitive
// derivations (the trim-count snap) must pin their own.
//
// Two hazards this header exists to manage:
//
//   * [cfenv]/C11 F.8.4: a new thread starts with the floating-point
//     environment of the thread that *created* it, captured at creation
//     time. A ThreadPool built before a mode switch therefore runs its
//     workers in the stale mode — the caller must re-establish its own
//     mode inside each task (sharded_by_coordinate and the conv batch
//     fan-out do; see core/thread_pool.h).
//   * Compilers assume FE_TONEAREST unless told otherwise: TUs that
//     compute under a ScopedRoundingMode are built with -frounding-math
//     (and #pragma STDC FENV_ACCESS where the compiler honors it) so FP
//     expressions are neither constant-folded nor hoisted across the
//     fesetround boundary.
#pragma once

#include <cfenv>
#include <cstddef>
#include <string>

namespace fedms::core {

// RAII fesetround: establishes `mode` for the current thread's scope and
// restores the previous mode on exit. Out-of-line on purpose — every
// binary that links a user of this class also links rounding.cpp, whose
// static initializer applies the FEDMS_ROUNDING_MODE environment override
// before main() (see rounding.cpp).
class ScopedRoundingMode {
 public:
  explicit ScopedRoundingMode(int mode);
  ~ScopedRoundingMode();

  ScopedRoundingMode(const ScopedRoundingMode&) = delete;
  ScopedRoundingMode& operator=(const ScopedRoundingMode&) = delete;

 private:
  int saved_;
};

// The four IEEE-754 modes in the canonical sweep order:
// FE_TONEAREST, FE_UPWARD, FE_DOWNWARD, FE_TOWARDZERO.
inline constexpr std::size_t kRoundingModeCount = 4;
const int* all_rounding_modes();  // kRoundingModeCount entries

// Stable spelling for logs/CLI: "nearest" | "upward" | "downward" |
// "towardzero" ("?" for an unknown mode value).
const char* rounding_mode_name(int mode);

// Parses a spelling from rounding_mode_name. Returns false (and leaves
// *mode untouched) on anything else.
bool parse_rounding_mode(const std::string& text, int* mode);

// CLI front-door validation: one-line error for an unknown spelling,
// "" = valid. Accepts the empty string (= "leave the ambient mode alone").
std::string check_rounding_mode_spec(const std::string& spec);

}  // namespace fedms::core
