#include "core/cli.h"

#include <cstdio>
#include <stdexcept>

#include "core/contracts.h"

namespace fedms::core {

namespace {

std::string bool_to_string(bool b) { return b ? "true" : "false"; }

}  // namespace

void CliFlags::add_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  FEDMS_EXPECTS(!flags_.count(name));
  flags_[name] = Flag{Kind::kInt, help, std::to_string(default_value)};
  order_.push_back(name);
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  FEDMS_EXPECTS(!flags_.count(name));
  flags_[name] = Flag{Kind::kDouble, help, std::to_string(default_value)};
  order_.push_back(name);
}

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  FEDMS_EXPECTS(!flags_.count(name));
  flags_[name] = Flag{Kind::kString, help, default_value};
  order_.push_back(name);
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  FEDMS_EXPECTS(!flags_.count(name));
  flags_[name] = Flag{Kind::kBool, help, bool_to_string(default_value)};
  order_.push_back(name);
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s (try --help)\n", arg.c_str());
      return false;
    }
    if (eq == std::string::npos) {
      if (it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag --%s expects a value\n", arg.c_str());
          return false;
        }
        value = argv[++i];
      }
    }
    // Validate by kind.
    try {
      switch (it->second.kind) {
        case Kind::kInt:
          (void)std::stoll(value);
          break;
        case Kind::kDouble:
          (void)std::stod(value);
          break;
        case Kind::kBool:
          if (value != "true" && value != "false" && value != "1" &&
              value != "0")
            throw std::invalid_argument(value);
          value = (value == "true" || value == "1") ? "true" : "false";
          break;
        case Kind::kString:
          break;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "invalid value for --%s: '%s'\n", arg.c_str(),
                   value.c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Kind kind) const {
  const auto it = flags_.find(name);
  FEDMS_EXPECTS(it != flags_.end());
  FEDMS_EXPECTS(it->second.kind == kind);
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

std::string CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

void CliFlags::print_usage(const std::string& program) const {
  std::fprintf(stderr, "%s\n\nusage: %s [flags]\n", description_.c_str(),
               program.c_str());
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    std::fprintf(stderr, "  --%-22s %s (default: %s)\n", name.c_str(),
                 f.help.c_str(), f.value.c_str());
  }
}

}  // namespace fedms::core
