// Wall-clock stopwatch used by the benchmark harnesses for coarse timing of
// simulation phases (training vs aggregation vs filtering).
#pragma once

#include <chrono>

namespace fedms::core {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  double seconds() const;
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fedms::core
