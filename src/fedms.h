// Umbrella header: the public API surface of the Fed-MS library.
//
// Fine-grained headers remain includable individually; this is the
// convenience entry point for downstream users:
//
//   #include <fedms.h>
//   fedms::fl::RunResult r = fedms::fl::run_experiment(workload, fed);
#pragma once

// Core utilities
#include "core/cli.h"
#include "core/contracts.h"
#include "core/log.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "core/thread_pool.h"

// Tensor / NN substrate
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/checkpoint.h"
#include "nn/classifier.h"
#include "nn/conv_layers.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "nn/params.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/conv.h"
#include "tensor/conv_im2col.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

// Data
#include "data/convex.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/sampler.h"
#include "data/synthetic.h"

// Simulated edge network
#include "net/latency.h"
#include "net/message.h"
#include "net/node_id.h"
#include "net/sim_network.h"

// Adversaries
#include "byz/attack.h"
#include "byz/attacks.h"
#include "byz/client_attacks.h"

// The Fed-MS algorithm
#include "fl/aggregators.h"
#include "fl/compression.h"
#include "fl/config.h"
#include "fl/experiment.h"
#include "fl/fedms.h"
#include "fl/learner.h"
#include "fl/nn_learner.h"
#include "fl/quadratic_learner.h"
#include "fl/server.h"
#include "fl/upload.h"

// Telemetry
#include "metrics/classification.h"
#include "metrics/json.h"
#include "metrics/recorder.h"
#include "metrics/stats.h"
#include "metrics/table.h"
