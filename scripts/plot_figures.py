#!/usr/bin/env python3
"""Plot the paper-reproduction figures from the bench binaries' CSV output.

Usage:
    ./build/bench/fig2_attacks  > fig2.csv
    ./build/bench/fig3_byzantine_fraction > fig3.csv
    ./build/bench/fig5_heterogeneity > fig5.csv
    python3 scripts/plot_figures.py fig2.csv fig3.csv fig5.csv -o figures/

Each input file is the stdout of a figure bench: comment lines start with
'#', data rows follow the schema

    figure,series,attack,round,accuracy,loss,train_loss

One PNG is produced per distinct `figure` value (fig2a, fig2b, ...), with
one accuracy-vs-round curve per `series` — the same panels the paper plots.
Requires matplotlib; no other dependencies.
"""

import argparse
import collections
import csv
import os
import sys

HEADER = ["figure", "series", "attack", "round", "accuracy", "loss",
          "train_loss"]


def read_rows(path):
    rows = []
    with open(path, newline="") as handle:
        for record in csv.reader(handle):
            if not record or record[0].startswith("#"):
                continue
            if record[:3] == HEADER[:3]:  # header line
                continue
            if len(record) != len(HEADER):
                continue  # summary tables etc.
            try:
                rows.append({
                    "figure": record[0],
                    "series": record[1],
                    "round": int(record[3]),
                    "accuracy": float(record[4]),
                })
            except ValueError:
                continue
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="bench stdout CSV files")
    parser.add_argument("-o", "--output-dir", default="figures")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_figures.py requires matplotlib "
                 "(pip install matplotlib)")

    panels = collections.defaultdict(
        lambda: collections.defaultdict(list))
    for path in args.inputs:
        for row in read_rows(path):
            panels[row["figure"]][row["series"]].append(
                (row["round"], row["accuracy"]))

    if not panels:
        sys.exit("no data rows found — pass the stdout of a figure bench")

    os.makedirs(args.output_dir, exist_ok=True)
    for figure, series in sorted(panels.items()):
        fig, axis = plt.subplots(figsize=(5, 3.4))
        for name, points in sorted(series.items()):
            points.sort()
            axis.plot([p[0] for p in points], [p[1] for p in points],
                      marker="o", markersize=2.5, linewidth=1.2, label=name)
        axis.set_xlabel("training round")
        axis.set_ylabel("test accuracy")
        axis.set_ylim(0.0, 1.0)
        axis.set_title(figure)
        axis.grid(alpha=0.3)
        axis.legend(fontsize=7)
        fig.tight_layout()
        out = os.path.join(args.output_dir, f"{figure}.png")
        fig.savefig(out, dpi=160)
        plt.close(fig)
        print(f"wrote {out} ({len(series)} series)")


if __name__ == "__main__":
    main()
