#!/usr/bin/env bash
# Full verification gate: a fresh RelWithDebInfo build + the entire ctest
# suite, then an ASan/UBSan build (-DFEDMS_SANITIZE=ON) exercising the
# event-driven runtime tests (the subsystem with the most pointer-juggling
# callbacks) plus the GEMM/workspace kernel tests (raw-pointer pack buffers
# and arena scratch), then a TSan build exercising the obs layer and the
# ThreadPool conv path (the two places worker threads write shared state),
# then a quick benchmark pass that must produce a parseable BENCH JSON with
# nonzero GEMM throughput. Run from anywhere inside the repo.
#
#   scripts/check.sh            # full gate
#   scripts/check.sh --fast     # reuse build dirs instead of wiping them
#   scripts/check.sh coverage   # gcov line-coverage over src/fl + src/runtime
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-check"
asan_build="$repo/build-asan"
tsan_build="$repo/build-tsan"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${1:-}" == "coverage" ]]; then
  # Coverage mode: instrumented build, the fast unit suite + a fuzz batch
  # as the exercising workload, then a gcov line-coverage summary for the
  # algorithm layers (src/fl + src/runtime). The floor below is documented
  # in EXPERIMENTS.md ("Coverage gate") — raise it as coverage grows, never
  # lower it to pass.
  cov_build="$repo/build-coverage"
  cov_floor="${FEDMS_COVERAGE_FLOOR:-80}"
  echo "== configure + build (coverage instrumentation) =="
  cmake -B "$cov_build" -S "$repo" -DCMAKE_BUILD_TYPE=Debug \
    -DFEDMS_COVERAGE=ON
  cmake --build "$cov_build" -j "$jobs"
  echo "== unit suite + fuzz batch (coverage workload) =="
  # Serial ctest: concurrent .gcda merging is safe but serial keeps the
  # counts reproducible run to run.
  ctest --test-dir "$cov_build" -L unit --output-on-failure
  cov_tmp="$(mktemp -d)"
  trap 'rm -rf "$cov_tmp"' EXIT
  "$cov_build/tools/fedms_fuzz" --corpus "$repo/tests/fuzz/corpus.txt" \
    --seeds 50 --repro-dir "$cov_tmp"
  echo "== gcov line coverage (src/fl + src/runtime) =="
  python3 - "$cov_build" "$repo" "$cov_floor" <<'PY'
import pathlib, re, subprocess, sys

build = pathlib.Path(sys.argv[1]).resolve()
repo = pathlib.Path(sys.argv[2]).resolve()
floor = float(sys.argv[3])

gcdas = sorted(build.glob("src/fl/**/*.gcda")) + \
        sorted(build.glob("src/runtime/**/*.gcda"))
assert gcdas, "no .gcda files found - did the instrumented tests run?"

per_file = {}  # repo-relative source -> (covered_lines, total_lines)
for gcda in gcdas:
    out = subprocess.run(["gcov", "-n", str(gcda)], cwd=str(build),
                         capture_output=True, text=True).stdout
    for m in re.finditer(
            r"File '([^']+)'\nLines executed:([\d.]+)% of (\d+)", out):
        path, pct, total = m.group(1), float(m.group(2)), int(m.group(3))
        source = pathlib.Path(path)
        if not source.is_absolute():
            source = (build / source).resolve()
        try:
            rel = source.resolve().relative_to(repo)
        except ValueError:
            continue  # system / third-party header
        key = str(rel)
        if not (key.startswith("src/fl") or key.startswith("src/runtime")):
            continue
        covered = pct / 100.0 * total
        # A header shows up once per including object; keep the best view.
        prev = per_file.get(key)
        if prev is None or covered > prev[0]:
            per_file[key] = (covered, total)

assert per_file, "gcov reported no src/fl or src/runtime files"
for name, (covered, total) in sorted(per_file.items()):
    print(f"  {name}: {100.0 * covered / total:5.1f}% of {total}")
covered = sum(c for c, _ in per_file.values())
total = sum(t for _, t in per_file.values())
pct = 100.0 * covered / total
print(f"TOTAL src/fl + src/runtime line coverage: {pct:.1f}% "
      f"({covered:.0f}/{total} lines)")
assert pct >= floor, (
    f"coverage {pct:.1f}% fell below the documented floor {floor:.0f}% "
    "(see EXPERIMENTS.md 'Coverage gate')")
print(f"coverage gate OK (floor {floor:.0f}%)")
PY
  echo "== coverage gate passed =="
  exit 0
fi

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  rm -rf "$build" "$asan_build" "$tsan_build"
fi

echo "== configure + build (RelWithDebInfo) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs"

echo "== ctest -L unit (fast pre-stage) =="
# Fail-fast slice: the hermetic unit tests run first so a broken kernel or
# filter surfaces in seconds, before the integration/fuzz machinery spins.
ctest --test-dir "$build" -L unit --output-on-failure -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir "$build" --output-on-failure

echo "== fuzz harness (committed corpus + 200 fresh schedules) =="
# Every corpus seed and a fresh batch must pass all differential +
# invariant oracles; a failure writes a shrunk repro JSON for replay.
fuzz_repro_dir="$(mktemp -d)"
trap 'rm -rf "$fuzz_repro_dir"' EXIT
"$build/tools/fedms_fuzz" --corpus "$repo/tests/fuzz/corpus.txt" \
  --seeds 200 --repro-dir "$fuzz_repro_dir"
"$build/tools/fedms_fuzz" --self-test --repro-dir "$fuzz_repro_dir"

echo "== multi-process smoke (4 clients + 2 PSs over Unix sockets) =="
# Real processes, real sockets: the launcher forks one process per node,
# runs 2 full Fed-MS rounds, then verifies the final accuracy, per-client
# model CRCs, and per-direction byte totals bit-for-bit against the
# round-synchronous simulator.
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 4 --servers 2 --byzantine 1 --rounds 2 --samples 400 --verify

echo "== event-loop runtime smoke (8 clients + 4 PSs, sharded filter) =="
# Same launcher, but every PS runs the epoll-based event-loop runtime with
# the aggregation filter sharded across a 2-thread pool — still bit-for-bit
# against the simulator.
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 8 --servers 4 --byzantine 1 --rounds 2 --samples 400 \
  --runtime eventloop --filter-threads 2 --verify

echo "== wire-encoding smoke (--verify per encoding) =="
# Every negotiated encoding must stay bit-for-bit against the simulator:
# lossless f32 trivially, the lossy ones because the sender advances its
# reference by decoding its own bytes (ARCHITECTURE.md "Wire encodings").
for enc in f32 fp16 int8 topk:0.25 delta+int8; do
  "$build/tools/fedms_node" --mode inmem --clients 4 --servers 2 \
    --byzantine 1 --rounds 2 --samples 400 --wire-encoding "$enc" \
    --verify > /dev/null
done
# One lossy encoding across real process boundaries (frames on the wire).
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 4 --servers 2 --byzantine 1 --rounds 2 --samples 400 \
  --wire-encoding topk:0.25 --verify

echo "== soak smoke (64-client event-loop rounds) =="
"$build/bench/soak" --quick > /dev/null
"$build/bench/soak" --quick --backend poll > /dev/null

echo "== trace smoke (sim + multi-process, Chrome trace JSON) =="
# Both execution paths must emit loadable Chrome traces: the simulator via
# --trace-out and the launcher via --trace-dir (per-node files merged into
# merged.trace.json with consistent stage order — the launcher exits
# nonzero otherwise).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$fuzz_repro_dir" "$trace_dir"' EXIT
"$build/tools/fedms_sim" --clients 4 --servers 2 --byzantine 1 --rounds 2 \
  --samples 400 --eval-every 1000 --trace-out "$trace_dir/sim.trace.json" \
  > /dev/null
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 2 --samples 200 \
  --trace-dir "$trace_dir/nodes" > /dev/null
python3 - "$trace_dir/sim.trace.json" "$trace_dir/nodes/merged.trace.json" \
  <<'PY'
import json, sys
for path in sys.argv[1:]:
    trace = json.load(open(path))
    events = trace["traceEvents"]
    stages = {e["name"] for e in events if e.get("ph") == "X"}
    missing = {"local_training", "upload", "aggregation", "dissemination",
               "filter"} - stages
    assert not missing, f"{path}: missing stage spans {missing}"
print("trace smoke OK (sim + merged node traces parse, all stages present)")
PY

echo "== sweep smoke (bit-equality across --jobs on examples/churn.json) =="
# The batch runner's core contract: every cell is a pure function of
# (scenario, defense, seed), so packing cells across the thread pool must
# not change one output byte.
sweep_dir="$(mktemp -d)"
trap 'rm -rf "$fuzz_repro_dir" "$trace_dir" "$sweep_dir"' EXIT
"$build/tools/fedms_sweep" --scenario "$repo/examples/churn.json" \
  --seeds 4 --defenses trmean:0.2,mean --jobs 1 \
  --out-dir "$sweep_dir/serial" > /dev/null
"$build/tools/fedms_sweep" --scenario "$repo/examples/churn.json" \
  --seeds 4 --defenses trmean:0.2,mean --jobs "$jobs" \
  --out-dir "$sweep_dir/packed" > /dev/null
diff -r "$sweep_dir/serial" "$sweep_dir/packed"
echo "sweep smoke OK (8 cells byte-identical across --jobs 1 and $jobs)"

echo "== matrix smoke (micro-matrix vs committed golden surface) =="
# The (defense x attack) matrix runner: the seeded 2x2x2 micro-matrix must
# be byte-identical across --jobs and reproduce the committed golden
# surface within a per-cell accuracy tolerance. (Exact byte equality with
# the golden is pinned by ctest's tool_fedms_matrix_equality; this stage
# is the regression alarm with headroom for intentional retuning.)
"$build/tools/fedms_matrix" --defenses mean,adaptive --attacks signflip,nan \
  --seeds 2 --jobs 1 --out-dir "$sweep_dir/matrix-serial" > /dev/null
"$build/tools/fedms_matrix" --defenses mean,adaptive --attacks signflip,nan \
  --seeds 2 --jobs "$jobs" --out-dir "$sweep_dir/matrix-packed" > /dev/null
diff -r "$sweep_dir/matrix-serial" "$sweep_dir/matrix-packed"
python3 - "$sweep_dir/matrix-serial/surface.json" \
  "$repo/tests/golden/matrix_surface.json" <<'PY'
import json, sys
produced = json.load(open(sys.argv[1]))
golden = json.load(open(sys.argv[2]))
tol = 0.02
cells = {(c["defense"], c["attack"], c["seed"]): c["accuracy"]
         for c in produced["cells"]}
want = {(c["defense"], c["attack"], c["seed"]): c["accuracy"]
        for c in golden["cells"]}
assert cells.keys() == want.keys(), \
    f"cell sets differ: {sorted(set(cells) ^ set(want))}"
bad = [(k, cells[k], want[k]) for k in sorted(want)
       if abs(cells[k] - want[k]) > tol]
assert not bad, f"cells off golden by more than {tol}: {bad}"
print(f"matrix smoke OK ({len(want)} cells within {tol} of the golden)")
PY

echo "== determinism gate (fenv rounding-mode sweep) =="
# The determinism contract (ARCHITECTURE.md "Determinism contract"): the
# unit suite and the multi-process --verify smoke must hold under every
# fenv rounding mode — FEDMS_ROUNDING_MODE pins the whole process pre-main,
# --rounding-mode pins it per tool and is forwarded to forked node
# processes. Only numeric RESULTS may differ between modes; every
# differential oracle (streaming vs nth_element vs reference filter,
# sharded vs serial, sim vs processes) must agree bit-for-bit WITHIN one.
for mode in nearest upward downward towardzero; do
  if ! FEDMS_ROUNDING_MODE="$mode" ctest --test-dir "$build" -L unit \
      --output-on-failure -j "$jobs" > "$sweep_dir/ctest-$mode.log" 2>&1; then
    cat "$sweep_dir/ctest-$mode.log"
    echo "determinism gate FAILED: unit suite broke under mode $mode"
    exit 1
  fi
  "$build/tools/fedms_node" --mode inmem --rounding-mode "$mode" \
    --clients 4 --servers 2 --byzantine 1 --rounds 2 --samples 400 \
    --verify > /dev/null
  echo "determinism OK under $mode (unit suite + inmem --verify)"
done
# Sharded filter across thread counts under a directed mode: the event-loop
# runtime with 1/2/4 filter threads must stay bit-for-bit against the
# serial simulator even when every reduction rounds toward zero.
for threads in 1 2 4; do
  "$build/tools/fedms_node" --mode launch --backend unix \
    --clients 8 --servers 4 --byzantine 1 --rounds 2 --samples 400 \
    --runtime eventloop --filter-threads "$threads" \
    --rounding-mode towardzero --verify > /dev/null
done
echo "determinism OK (event-loop --filter-threads 1/2/4 under towardzero)"
# Sweep bit-equality under a non-default mode, with a one-line
# first-divergent-CRC diff on mismatch (diff -r would dump whole files).
FEDMS_ROUNDING_MODE=upward "$build/tools/fedms_sweep" \
  --scenario "$repo/examples/churn.json" --seeds 4 \
  --defenses trmean:0.2,mean --jobs 1 \
  --out-dir "$sweep_dir/mode-serial" > /dev/null
FEDMS_ROUNDING_MODE=upward "$build/tools/fedms_sweep" \
  --scenario "$repo/examples/churn.json" --seeds 4 \
  --defenses trmean:0.2,mean --jobs "$jobs" \
  --out-dir "$sweep_dir/mode-packed" > /dev/null
python3 - "$sweep_dir/mode-serial" "$sweep_dir/mode-packed" <<'PY'
import pathlib, sys, zlib
a, b = (pathlib.Path(p) for p in sys.argv[1:3])
files_a = sorted(p.relative_to(a) for p in a.rglob("*") if p.is_file())
files_b = sorted(p.relative_to(b) for p in b.rglob("*") if p.is_file())
assert files_a == files_b, \
    f"file sets differ: {sorted(set(files_a) ^ set(files_b))}"
for rel in files_a:
    ca = zlib.crc32((a / rel).read_bytes())
    cb = zlib.crc32((b / rel).read_bytes())
    if ca != cb:
        sys.exit(f"first divergent cell: {rel} "
                 f"(crc {ca:08x} vs {cb:08x})")
print(f"sweep bit-equality OK under upward ({len(files_a)} files)")
PY

echo "== configure + build (ASan + UBSan) =="
cmake -B "$asan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDMS_SANITIZE=ON
cmake --build "$asan_build" -j "$jobs" \
  --target runtime_event_queue_test runtime_fault_test runtime_async_test \
           transport_frame_test transport_inmem_test transport_socket_test \
           eventloop_test eventloop_churn_test fl_wire_encoding_test \
           tensor_gemm_test tensor_workspace_test \
           fl_aggregator_properties_test fedms_node fedms_sweep fedms_matrix

echo "== runtime + transport + kernel tests under ASan/UBSan =="
# Death tests fork; ASan is fine with that but needs the default allocator
# not to complain about the intentional aborts. The aggregator property
# suite covers the whole defense zoo (adaptive estimation, fedgreed
# selection, sharded pools) with every allocation checked.
for t in runtime_event_queue_test runtime_fault_test runtime_async_test \
         transport_frame_test transport_inmem_test transport_socket_test \
         eventloop_test eventloop_churn_test fl_wire_encoding_test \
         tensor_gemm_test tensor_workspace_test \
         fl_aggregator_properties_test; do
  "$asan_build/tests/$t"
done

echo "== multi-process smoke under ASan/UBSan =="
"$asan_build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 1 --samples 200 --verify
"$asan_build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 1 --samples 200 \
  --runtime eventloop --verify
# The compressed wire path's encode/decode (quantization buffers, index
# bitmaps, reference chains) under every allocation check.
"$asan_build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 2 --samples 200 \
  --wire-encoding delta+int8 --verify

echo "== sweep runner under ASan/UBSan =="
# Churn + handoff + thread-pool cell packing with every allocation checked.
"$asan_build/tools/fedms_sweep" --scenario "$repo/examples/churn.json" \
  --seeds 2 --jobs "$jobs" --out-dir "$sweep_dir/asan" > /dev/null

echo "== matrix runner under ASan/UBSan =="
# The adaptive-B estimator and the fedgreed root-batch scorer end to end
# (per-round estimation, held-out evaluation, cell packing) under ASan.
"$asan_build/tools/fedms_matrix" --defenses adaptive,fedgreed:5 \
  --attacks signflip,nan --seeds 1 --jobs "$jobs" \
  --out-dir "$sweep_dir/matrix-asan" > /dev/null

echo "== configure + build (TSan) =="
cmake -B "$tsan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDMS_SANITIZE_THREAD=ON
cmake --build "$tsan_build" -j "$jobs" \
  --target obs_test core_thread_pool_test tensor_conv_test \
           tensor_workspace_test fl_sharded_filter_test

echo "== obs layer + ThreadPool paths under TSan =="
# obs_test's concurrent-recording case hammers the registry from pool
# workers; the conv/workspace tests drive the ThreadPool im2col path that
# the training spans wrap; the sharded-filter test drives the event-loop
# runtime's coordinate-sharded trimmed mean from pool workers.
for t in obs_test core_thread_pool_test tensor_conv_test \
         tensor_workspace_test fl_sharded_filter_test; do
  "$tsan_build/tests/$t"
done

echo "== benchmark harness (quick) =="
# Release build + short-budget bench run; the report must parse and show
# nonzero blocked-GEMM throughput (catches a silently broken fast path).
bench_out="$(mktemp)"
trap 'rm -rf "$fuzz_repro_dir" "$trace_dir" "$sweep_dir" "$bench_out"' EXIT
FEDMS_BENCH_OUT="$bench_out" "$repo/scripts/bench.sh" --quick
python3 - "$bench_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
shapes = report["gemm"]
assert shapes, "bench report has no GEMM entries"
for shape in shapes:
    assert shape["blocked_gflops"] > 0, f"zero GFLOP/s for {shape['tag']}"
assert report["per_round"]["seconds_per_round"] > 0
assert report["soak"]["rounds_per_second"] > 0
assert report["soak"]["evicted_slow"] == 0, "soak evicted a healthy client"
sweep = report["sweep_throughput"]
assert sweep["scenarios_per_hour"] > 0
assert sweep["speedup"] > 0
wire = report["wire_encodings"]
for enc in ("int8", "topk:0.25"):
    assert wire["soak"][enc]["reduction_vs_f32"] >= 2.0, enc
for enc, entry in wire["accuracy"].items():
    assert abs(entry["delta_vs_f32"]) <= 0.05, (enc, entry)
print(f"bench report OK ({len(shapes)} GEMM shapes)")
PY

echo "== all checks passed =="
