#!/usr/bin/env bash
# Full verification gate: a fresh RelWithDebInfo build + the entire ctest
# suite, then an ASan/UBSan build (-DFEDMS_SANITIZE=ON) exercising the
# event-driven runtime tests (the subsystem with the most pointer-juggling
# callbacks). Run from anywhere inside the repo.
#
#   scripts/check.sh            # full gate
#   scripts/check.sh --fast     # reuse build dirs instead of wiping them
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-check"
asan_build="$repo/build-asan"
jobs="$(nproc 2>/dev/null || echo 4)"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  rm -rf "$build" "$asan_build"
fi

echo "== configure + build (RelWithDebInfo) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir "$build" --output-on-failure

echo "== multi-process smoke (4 clients + 2 PSs over Unix sockets) =="
# Real processes, real sockets: the launcher forks one process per node,
# runs 2 full Fed-MS rounds, then verifies the final accuracy, per-client
# model CRCs, and per-direction byte totals bit-for-bit against the
# round-synchronous simulator.
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 4 --servers 2 --byzantine 1 --rounds 2 --samples 400 --verify

echo "== configure + build (ASan + UBSan) =="
cmake -B "$asan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDMS_SANITIZE=ON
cmake --build "$asan_build" -j "$jobs" \
  --target runtime_event_queue_test runtime_fault_test runtime_async_test \
           transport_frame_test transport_inmem_test transport_socket_test \
           fedms_node

echo "== runtime + transport tests under ASan/UBSan =="
# Death tests fork; ASan is fine with that but needs the default allocator
# not to complain about the intentional aborts.
for t in runtime_event_queue_test runtime_fault_test runtime_async_test \
         transport_frame_test transport_inmem_test transport_socket_test; do
  "$asan_build/tests/$t"
done

echo "== multi-process smoke under ASan/UBSan =="
"$asan_build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 1 --samples 200 --verify

echo "== all checks passed =="
