#!/usr/bin/env bash
# Full verification gate: a fresh RelWithDebInfo build + the entire ctest
# suite, then an ASan/UBSan build (-DFEDMS_SANITIZE=ON) exercising the
# event-driven runtime tests (the subsystem with the most pointer-juggling
# callbacks) plus the GEMM/workspace kernel tests (raw-pointer pack buffers
# and arena scratch), then a TSan build exercising the obs layer and the
# ThreadPool conv path (the two places worker threads write shared state),
# then a quick benchmark pass that must produce a parseable BENCH JSON with
# nonzero GEMM throughput. Run from anywhere inside the repo.
#
#   scripts/check.sh            # full gate
#   scripts/check.sh --fast     # reuse build dirs instead of wiping them
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-check"
asan_build="$repo/build-asan"
tsan_build="$repo/build-tsan"
jobs="$(nproc 2>/dev/null || echo 4)"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  rm -rf "$build" "$asan_build" "$tsan_build"
fi

echo "== configure + build (RelWithDebInfo) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir "$build" --output-on-failure

echo "== multi-process smoke (4 clients + 2 PSs over Unix sockets) =="
# Real processes, real sockets: the launcher forks one process per node,
# runs 2 full Fed-MS rounds, then verifies the final accuracy, per-client
# model CRCs, and per-direction byte totals bit-for-bit against the
# round-synchronous simulator.
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 4 --servers 2 --byzantine 1 --rounds 2 --samples 400 --verify

echo "== trace smoke (sim + multi-process, Chrome trace JSON) =="
# Both execution paths must emit loadable Chrome traces: the simulator via
# --trace-out and the launcher via --trace-dir (per-node files merged into
# merged.trace.json with consistent stage order — the launcher exits
# nonzero otherwise).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
"$build/tools/fedms_sim" --clients 4 --servers 2 --byzantine 1 --rounds 2 \
  --samples 400 --eval-every 1000 --trace-out "$trace_dir/sim.trace.json" \
  > /dev/null
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 2 --samples 200 \
  --trace-dir "$trace_dir/nodes" > /dev/null
python3 - "$trace_dir/sim.trace.json" "$trace_dir/nodes/merged.trace.json" \
  <<'PY'
import json, sys
for path in sys.argv[1:]:
    trace = json.load(open(path))
    events = trace["traceEvents"]
    stages = {e["name"] for e in events if e.get("ph") == "X"}
    missing = {"local_training", "upload", "aggregation", "dissemination",
               "filter"} - stages
    assert not missing, f"{path}: missing stage spans {missing}"
print("trace smoke OK (sim + merged node traces parse, all stages present)")
PY

echo "== configure + build (ASan + UBSan) =="
cmake -B "$asan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDMS_SANITIZE=ON
cmake --build "$asan_build" -j "$jobs" \
  --target runtime_event_queue_test runtime_fault_test runtime_async_test \
           transport_frame_test transport_inmem_test transport_socket_test \
           tensor_gemm_test tensor_workspace_test \
           fedms_node

echo "== runtime + transport + kernel tests under ASan/UBSan =="
# Death tests fork; ASan is fine with that but needs the default allocator
# not to complain about the intentional aborts.
for t in runtime_event_queue_test runtime_fault_test runtime_async_test \
         transport_frame_test transport_inmem_test transport_socket_test \
         tensor_gemm_test tensor_workspace_test; do
  "$asan_build/tests/$t"
done

echo "== multi-process smoke under ASan/UBSan =="
"$asan_build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 1 --samples 200 --verify

echo "== configure + build (TSan) =="
cmake -B "$tsan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDMS_SANITIZE_THREAD=ON
cmake --build "$tsan_build" -j "$jobs" \
  --target obs_test core_thread_pool_test tensor_conv_test \
           tensor_workspace_test

echo "== obs layer + ThreadPool conv path under TSan =="
# obs_test's concurrent-recording case hammers the registry from pool
# workers; the conv/workspace tests drive the ThreadPool im2col path that
# the training spans now wrap.
for t in obs_test core_thread_pool_test tensor_conv_test \
         tensor_workspace_test; do
  "$tsan_build/tests/$t"
done

echo "== benchmark harness (quick) =="
# Release build + short-budget bench run; the report must parse and show
# nonzero blocked-GEMM throughput (catches a silently broken fast path).
bench_out="$(mktemp)"
trap 'rm -rf "$trace_dir" "$bench_out"' EXIT
FEDMS_BENCH_OUT="$bench_out" "$repo/scripts/bench.sh" --quick
python3 - "$bench_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
shapes = report["gemm"]
assert shapes, "bench report has no GEMM entries"
for shape in shapes:
    assert shape["blocked_gflops"] > 0, f"zero GFLOP/s for {shape['tag']}"
assert report["per_round"]["seconds_per_round"] > 0
print(f"bench report OK ({len(shapes)} GEMM shapes)")
PY

echo "== all checks passed =="
