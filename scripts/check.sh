#!/usr/bin/env bash
# Full verification gate: a fresh RelWithDebInfo build + the entire ctest
# suite, then an ASan/UBSan build (-DFEDMS_SANITIZE=ON) exercising the
# event-driven runtime tests (the subsystem with the most pointer-juggling
# callbacks) plus the GEMM/workspace kernel tests (raw-pointer pack buffers
# and arena scratch), then a quick benchmark pass that must produce a
# parseable BENCH JSON with nonzero GEMM throughput. Run from anywhere
# inside the repo.
#
#   scripts/check.sh            # full gate
#   scripts/check.sh --fast     # reuse build dirs instead of wiping them
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-check"
asan_build="$repo/build-asan"
jobs="$(nproc 2>/dev/null || echo 4)"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  rm -rf "$build" "$asan_build"
fi

echo "== configure + build (RelWithDebInfo) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs"

echo "== ctest (full suite) =="
ctest --test-dir "$build" --output-on-failure

echo "== multi-process smoke (4 clients + 2 PSs over Unix sockets) =="
# Real processes, real sockets: the launcher forks one process per node,
# runs 2 full Fed-MS rounds, then verifies the final accuracy, per-client
# model CRCs, and per-direction byte totals bit-for-bit against the
# round-synchronous simulator.
"$build/tools/fedms_node" --mode launch --backend unix \
  --clients 4 --servers 2 --byzantine 1 --rounds 2 --samples 400 --verify

echo "== configure + build (ASan + UBSan) =="
cmake -B "$asan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEDMS_SANITIZE=ON
cmake --build "$asan_build" -j "$jobs" \
  --target runtime_event_queue_test runtime_fault_test runtime_async_test \
           transport_frame_test transport_inmem_test transport_socket_test \
           tensor_gemm_test tensor_workspace_test \
           fedms_node

echo "== runtime + transport + kernel tests under ASan/UBSan =="
# Death tests fork; ASan is fine with that but needs the default allocator
# not to complain about the intentional aborts.
for t in runtime_event_queue_test runtime_fault_test runtime_async_test \
         transport_frame_test transport_inmem_test transport_socket_test \
         tensor_gemm_test tensor_workspace_test; do
  "$asan_build/tests/$t"
done

echo "== multi-process smoke under ASan/UBSan =="
"$asan_build/tools/fedms_node" --mode launch --backend unix \
  --clients 2 --servers 2 --byzantine 1 --rounds 1 --samples 200 --verify

echo "== benchmark harness (quick) =="
# Release build + short-budget bench run; the report must parse and show
# nonzero blocked-GEMM throughput (catches a silently broken fast path).
bench_out="$(mktemp)"
trap 'rm -f "$bench_out"' EXIT
FEDMS_BENCH_OUT="$bench_out" "$repo/scripts/bench.sh" --quick
python3 - "$bench_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
shapes = report["gemm"]
assert shapes, "bench report has no GEMM entries"
for shape in shapes:
    assert shape["blocked_gflops"] > 0, f"zero GFLOP/s for {shape['tag']}"
assert report["per_round"]["seconds_per_round"] > 0
print(f"bench report OK ({len(shapes)} GEMM shapes)")
PY

echo "== all checks passed =="
