#!/usr/bin/env bash
# Kernel/aggregator benchmark harness. Builds a Release tree, runs
#   * bench/micro_gemm        — blocked GEMM GFLOP/s vs the seed ikj loop,
#   * bench/micro_aggregators — trimmed-mean throughput (blocked nth_element
#                               path vs the sort-based reference),
#   * bench/micro_training    — local SGD steps/s per model (the number the
#                               tracing layer must not regress),
#   * bench/micro_obs         — per-record cost of the obs layer (disabled
#                               spans are the always-on tax),
#   * bench/soak              — >= 10k clients through full protocol rounds
#                               against one event-loop PS process,
#   * bench/sweep_throughput  — scenario-sweep cells sequential vs packed
#                               across the thread pool,
#   * tools/fedms_sim         — wall-clock per federated round,
# and merges everything into one JSON report (default: repo/BENCH_PR<N>.json
# with N from --pr or FEDMS_BENCH_PR, currently 8). When a recent PR's
# report exists next to it, the merge step records the per-round delta
# against it so perf regressions show up in the report itself.
#
# PR 8 additions: the soak also runs under --wire-encoding int8 and
# topk:0.25 (bytes/round + MB/s vs the f32 baseline soak; the report
# asserts >= 3x byte reduction for both), and a mobilenet 8x4 simulator
# sweep records final accuracy per wire encoding (asserted within 1% of
# the f32 baseline on the full run).
#
#   scripts/bench.sh            # full budgets
#   scripts/bench.sh --quick    # tiny budgets (CI sanity / check.sh)
#   scripts/bench.sh --pr 5     # write BENCH_PR5.json
#
# Env: FEDMS_BENCH_OUT overrides the output path, FEDMS_BENCH_PR the PR
# number.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-bench"
jobs="$(nproc 2>/dev/null || echo 4)"

quick=0
pr="${FEDMS_BENCH_PR:-8}"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1 ;;
    --pr) pr="$2"; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done
out="${FEDMS_BENCH_OUT:-$repo/BENCH_PR${pr}.json}"
# Not every PR ships a bench report; fall back one more step so the delta
# still lands against the most recent committed baseline.
baseline="$repo/BENCH_PR$((pr - 1)).json"
[[ -f "$baseline" ]] || baseline="$repo/BENCH_PR$((pr - 2)).json"

echo "== configure + build (Release, bench targets) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
  -DFEDMS_BUILD_TESTS=OFF -DFEDMS_BUILD_EXAMPLES=OFF -DFEDMS_BUILD_BENCH=ON
cmake --build "$build" -j "$jobs" --target micro_gemm micro_aggregators \
  micro_training micro_obs soak sweep_throughput fedms_sim

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== micro_gemm =="
gemm_flags=()
[[ $quick -eq 1 ]] && gemm_flags+=(--quick)
"$build/bench/micro_gemm" "${gemm_flags[@]}" > "$tmp/gemm.json"

echo "== micro_aggregators (trimmed mean) =="
agg_flags=(--benchmark_filter='TrimmedMean'
           --benchmark_format=json
           --benchmark_out="$tmp/aggregators.json"
           --benchmark_out_format=json)
[[ $quick -eq 1 ]] && agg_flags+=(--benchmark_min_time=0.05)
"$build/bench/micro_aggregators" "${agg_flags[@]}" > /dev/null

echo "== micro_training (local SGD steps/s) =="
train_flags=(--benchmark_filter='LocalStep'
             --benchmark_format=json
             --benchmark_out="$tmp/training.json"
             --benchmark_out_format=json)
[[ $quick -eq 1 ]] && train_flags+=(--benchmark_min_time=0.05)
"$build/bench/micro_training" "${train_flags[@]}" > /dev/null

echo "== micro_obs (tracing layer per-record cost) =="
obs_flags=()
[[ $quick -eq 1 ]] && obs_flags+=(--quick)
"$build/bench/micro_obs" "${obs_flags[@]}" > "$tmp/obs.json"

echo "== soak (event-loop server, full protocol rounds) =="
# The full run needs ~2 fds per client split across two processes; the
# bench probes RLIMIT_NOFILE itself and fails with the `ulimit -n` remedy
# when the budget is short.
soak_flags=(--clients 10000 --dim 1024 --rounds 3)
[[ $quick -eq 1 ]] && soak_flags=(--quick)
"$build/bench/soak" "${soak_flags[@]}" > "$tmp/soak.json"

echo "== soak under compressed wire encodings (int8, topk:0.25) =="
# Same swarm, lossy wire paths; the merge step computes bytes/round and
# MB/s against the f32 soak above and asserts the >= 3x byte reduction.
"$build/bench/soak" "${soak_flags[@]}" --wire-encoding int8 \
  > "$tmp/soak-int8.json"
"$build/bench/soak" "${soak_flags[@]}" --wire-encoding topk:0.25 \
  > "$tmp/soak-topk.json"

echo "== mobilenet 8x4 final accuracy per wire encoding =="
acc_rounds=8
acc_samples=400
[[ $quick -eq 1 ]] && { acc_rounds=2; acc_samples=200; }
: > "$tmp/wire-accuracy.txt"
for enc in f32 fp16 int8 topk:0.25 delta+int8; do
  "$build/tools/fedms_sim" --model mobilenet --clients 8 --servers 4 \
    --byzantine 1 --rounds "$acc_rounds" --samples "$acc_samples" \
    --eval-every "$acc_rounds" --wire-encoding "$enc" \
    | grep '# final accuracy:' | sed "s|^|$enc |" \
    >> "$tmp/wire-accuracy.txt"
done

echo "== sweep_throughput (batched scenario cells) =="
sweep_flags=()
[[ $quick -eq 1 ]] && sweep_flags+=(--quick)
"$build/bench/sweep_throughput" "${sweep_flags[@]}" > "$tmp/sweep.json"

echo "== fedms_sim per-round wall time =="
rounds=8
runs=3
[[ $quick -eq 1 ]] && { rounds=2; runs=1; }
# Best-of-N: the first run after a build pays page-cache/frequency-ramp
# costs that have nothing to do with the code under test; the minimum is
# the stable per-round figure.
sim_seconds="$(SIM="$build/tools/fedms_sim" ROUNDS="$rounds" RUNS="$runs" \
python3 - <<'PY'
import os, subprocess, time
cmd = [os.environ["SIM"], "--model", "mobilenet", "--clients", "8",
       "--servers", "4", "--byzantine", "1",
       "--rounds", os.environ["ROUNDS"],
       "--samples", "400", "--eval-every", "1000"]
best = None
for _ in range(int(os.environ["RUNS"])):
    t0 = time.monotonic()
    subprocess.run(cmd, stdout=subprocess.DEVNULL, check=True)
    dt = time.monotonic() - t0
    best = dt if best is None else min(best, dt)
print(best)
PY
)"

echo "== merge -> $out =="
GEMM_JSON="$tmp/gemm.json" AGG_JSON="$tmp/aggregators.json" \
TRAIN_JSON="$tmp/training.json" OBS_JSON="$tmp/obs.json" \
SOAK_JSON="$tmp/soak.json" SWEEP_JSON="$tmp/sweep.json" \
SOAK_INT8_JSON="$tmp/soak-int8.json" SOAK_TOPK_JSON="$tmp/soak-topk.json" \
WIRE_ACC_TXT="$tmp/wire-accuracy.txt" \
SIM_SECONDS="$sim_seconds" SIM_ROUNDS="$rounds" \
QUICK="$quick" OUT="$out" PR="$pr" BASELINE="$baseline" python3 - <<'PY'
import json, os

gemm = json.load(open(os.environ["GEMM_JSON"]))
agg = json.load(open(os.environ["AGG_JSON"]))
train = json.load(open(os.environ["TRAIN_JSON"]))
obs = json.load(open(os.environ["OBS_JSON"]))
soak = json.load(open(os.environ["SOAK_JSON"]))["soak"]
sweep = json.load(open(os.environ["SWEEP_JSON"]))["sweep_throughput"]
quick = bool(int(os.environ["QUICK"]))

# PR 8: compressed-wire soak runs vs the f32 baseline soak.
wire_soak = {"f32": soak}
for key, env in (("int8", "SOAK_INT8_JSON"), ("topk:0.25", "SOAK_TOPK_JSON")):
    wire_soak[key] = json.load(open(os.environ[env]))["soak"]
wire_encodings = {"soak": {}}
f32_bytes = wire_soak["f32"]["data_bytes_per_round"]
for key, run in wire_soak.items():
    reduction = f32_bytes / run["data_bytes_per_round"]
    wire_encodings["soak"][key] = {
        "data_bytes_per_round": run["data_bytes_per_round"],
        "rounds_per_second": run["rounds_per_second"],
        "mb_per_second": round(run["bytes_per_second"] / 1e6, 2),
        "reduction_vs_f32": round(reduction, 2),
    }
    assert run["wire_encoding"] == key, (key, run["wire_encoding"])
    if key != "f32":
        # The compressed wire path's reason to exist; quick mode keeps a
        # soft floor (tiny payloads are header-dominated).
        floor = 2.0 if quick else 3.0
        assert reduction >= floor, (
            f"{key} soak byte reduction {reduction:.2f}x fell below "
            f"{floor:.0f}x vs f32")

# Mobilenet 8x4 final accuracy per wire encoding (lines like
# "int8 # final accuracy: mean 0.1300 ...").
wire_encodings["accuracy"] = {}
for line in open(os.environ["WIRE_ACC_TXT"]):
    enc = line.split()[0]
    mean = float(line.split("mean")[1].split()[0])
    wire_encodings["accuracy"][enc] = {"final_accuracy": mean}
f32_acc = wire_encodings["accuracy"]["f32"]["final_accuracy"]
for enc, entry in wire_encodings["accuracy"].items():
    delta = entry["final_accuracy"] - f32_acc
    entry["delta_vs_f32"] = round(delta, 4)
    if not quick:
        assert abs(delta) <= 0.01, (
            f"{enc} final accuracy drifted {delta:+.4f} from the f32 "
            "baseline on mobilenet 8x4 (budget: 1%)")

def series(report):
    rows = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rows.append({
            "name": b["name"],
            "cpu_time_ns": b.get("cpu_time"),
            # items/s: coordinates for the aggregators, SGD steps for the
            # training loops
            "items_per_second": b.get("items_per_second"),
        })
    return rows

seconds = float(os.environ["SIM_SECONDS"])
rounds = int(os.environ["SIM_ROUNDS"])
report = {
    "bench": f"PR{os.environ['PR']}",
    "quick": bool(int(os.environ["QUICK"])),
    "gemm": gemm["gemm"],
    "trimmed_mean": series(agg),
    "training": series(train),
    "obs": obs["obs"],
    "soak": soak,
    "wire_encodings": wire_encodings,
    "sweep_throughput": sweep,
    "per_round": {
        "model": "mobilenet",
        "clients": 8,
        "servers": 4,
        "rounds": rounds,
        "total_seconds": round(seconds, 4),
        "seconds_per_round": round(seconds / rounds, 4),
    },
}

# Delta vs the previous PR's report, where comparable series exist. The
# tracing layer ships disabled, so per-round time and training steps/s must
# hold within noise (<2%).
base_path = os.environ["BASELINE"]
if os.path.exists(base_path):
    base = json.load(open(base_path))
    deltas = {"baseline": os.path.basename(base_path)}
    if "per_round" in base:
        prev = base["per_round"]["seconds_per_round"]
        cur = report["per_round"]["seconds_per_round"]
        deltas["seconds_per_round_change"] = round(cur / prev - 1.0, 4)
    if base.get("training"):
        prev_steps = {b["name"]: b["items_per_second"]
                      for b in base["training"]}
        changes = {}
        for b in report["training"]:
            if b["name"] in prev_steps and prev_steps[b["name"]]:
                changes[b["name"]] = round(
                    b["items_per_second"] / prev_steps[b["name"]] - 1.0, 4)
        if changes:
            deltas["training_steps_change"] = changes
    report["vs_previous"] = deltas

with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")
for shape in report["gemm"]:
    print(f"  gemm {shape['tag']}: {shape['blocked_gflops']:.1f} GFLOP/s "
          f"({shape['speedup']:.2f}x vs seed ikj)")
for b in report["training"]:
    print(f"  {b['name']}: {b['items_per_second']:.0f} steps/s")
print(f"  obs span disabled/enabled: {report['obs']['span_disabled_ns']}"
      f" / {report['obs']['span_enabled_ns']} ns")
print(f"  soak: {soak['clients']} clients, "
      f"{soak['rounds_per_second']:.3f} rounds/s, "
      f"{soak['bytes_per_second'] / 1e6:.1f} MB/s, p99 aggregation "
      f"{soak['p99_ms']['aggregation']:.0f} ms")
for enc, row in wire_encodings["soak"].items():
    if enc == "f32":
        continue
    print(f"  soak wire {enc}: {row['data_bytes_per_round']} B/round, "
          f"{row['reduction_vs_f32']:.2f}x fewer bytes than f32")
accs = wire_encodings["accuracy"]
print("  mobilenet 8x4 accuracy vs f32: " + ", ".join(
    f"{enc} {entry['delta_vs_f32']:+.4f}"
    for enc, entry in accs.items() if enc != "f32"))
print(f"  sweep: {sweep['cells']} cells x {sweep['jobs']} jobs, "
      f"{sweep['scenarios_per_hour']:.0f} scenarios/h, "
      f"{sweep['speedup']:.2f}x vs sequential")
print(f"  per round: {report['per_round']['seconds_per_round']:.3f} s")
if "vs_previous" in report:
    change = report["vs_previous"].get("seconds_per_round_change")
    if change is not None:
        print(f"  per-round vs {report['vs_previous']['baseline']}: "
              f"{change:+.1%}")
PY

echo "== bench done =="
