#!/usr/bin/env bash
# Kernel/aggregator benchmark harness. Builds a Release tree, runs
#   * bench/micro_gemm        — blocked GEMM GFLOP/s vs the seed ikj loop,
#   * bench/micro_aggregators — trimmed-mean throughput (blocked nth_element
#                               path vs the sort-based reference),
#   * tools/fedms_sim         — wall-clock per federated round,
# and merges everything into one JSON report (default: repo/BENCH_PR3.json).
#
#   scripts/bench.sh            # full budgets
#   scripts/bench.sh --quick    # tiny budgets (CI sanity / check.sh)
#
# Env: FEDMS_BENCH_OUT overrides the output path.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-bench"
out="${FEDMS_BENCH_OUT:-$repo/BENCH_PR3.json}"
jobs="$(nproc 2>/dev/null || echo 4)"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== configure + build (Release, bench targets) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
  -DFEDMS_BUILD_TESTS=OFF -DFEDMS_BUILD_EXAMPLES=OFF -DFEDMS_BUILD_BENCH=ON
cmake --build "$build" -j "$jobs" --target micro_gemm micro_aggregators \
  fedms_sim

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== micro_gemm =="
gemm_flags=()
[[ $quick -eq 1 ]] && gemm_flags+=(--quick)
"$build/bench/micro_gemm" "${gemm_flags[@]}" > "$tmp/gemm.json"

echo "== micro_aggregators (trimmed mean) =="
agg_flags=(--benchmark_filter='TrimmedMean'
           --benchmark_format=json
           --benchmark_out="$tmp/aggregators.json"
           --benchmark_out_format=json)
[[ $quick -eq 1 ]] && agg_flags+=(--benchmark_min_time=0.05)
"$build/bench/micro_aggregators" "${agg_flags[@]}" > /dev/null

echo "== fedms_sim per-round wall time =="
rounds=8
[[ $quick -eq 1 ]] && rounds=2
sim_start="$(python3 -c 'import time; print(time.monotonic())')"
"$build/tools/fedms_sim" --model mobilenet --clients 8 --servers 4 \
  --byzantine 1 --rounds "$rounds" --samples 400 --eval-every 1000 \
  > /dev/null
sim_end="$(python3 -c 'import time; print(time.monotonic())')"

echo "== merge -> $out =="
GEMM_JSON="$tmp/gemm.json" AGG_JSON="$tmp/aggregators.json" \
SIM_START="$sim_start" SIM_END="$sim_end" SIM_ROUNDS="$rounds" \
QUICK="$quick" OUT="$out" python3 - <<'PY'
import json, os

gemm = json.load(open(os.environ["GEMM_JSON"]))
agg = json.load(open(os.environ["AGG_JSON"]))

trimmed = []
for b in agg.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    trimmed.append({
        "name": b["name"],
        "cpu_time_ns": b.get("cpu_time"),
        # coordinates aggregated per second (P * d * iterations / time)
        "items_per_second": b.get("items_per_second"),
    })

seconds = float(os.environ["SIM_END"]) - float(os.environ["SIM_START"])
rounds = int(os.environ["SIM_ROUNDS"])
report = {
    "bench": "PR3",
    "quick": bool(int(os.environ["QUICK"])),
    "gemm": gemm["gemm"],
    "trimmed_mean": trimmed,
    "per_round": {
        "model": "mobilenet",
        "clients": 8,
        "servers": 4,
        "rounds": rounds,
        "total_seconds": round(seconds, 4),
        "seconds_per_round": round(seconds / rounds, 4),
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")
for shape in report["gemm"]:
    print(f"  gemm {shape['tag']}: {shape['blocked_gflops']:.1f} GFLOP/s "
          f"({shape['speedup']:.2f}x vs seed ikj)")
print(f"  per round: {report['per_round']['seconds_per_round']:.3f} s")
PY

echo "== bench done =="
