# Empty dependencies file for custom_data_training.
# This may be replaced when dependencies are built.
