file(REMOVE_RECURSE
  "CMakeFiles/custom_data_training.dir/custom_data_training.cpp.o"
  "CMakeFiles/custom_data_training.dir/custom_data_training.cpp.o.d"
  "custom_data_training"
  "custom_data_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_data_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
