# Empty compiler generated dependencies file for theory_playground.
# This may be replaced when dependencies are built.
