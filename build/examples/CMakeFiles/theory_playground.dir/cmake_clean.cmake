file(REMOVE_RECURSE
  "CMakeFiles/theory_playground.dir/theory_playground.cpp.o"
  "CMakeFiles/theory_playground.dir/theory_playground.cpp.o.d"
  "theory_playground"
  "theory_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
