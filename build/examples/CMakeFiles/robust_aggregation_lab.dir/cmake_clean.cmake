file(REMOVE_RECURSE
  "CMakeFiles/robust_aggregation_lab.dir/robust_aggregation_lab.cpp.o"
  "CMakeFiles/robust_aggregation_lab.dir/robust_aggregation_lab.cpp.o.d"
  "robust_aggregation_lab"
  "robust_aggregation_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_aggregation_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
