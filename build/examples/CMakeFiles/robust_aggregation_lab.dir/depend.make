# Empty dependencies file for robust_aggregation_lab.
# This may be replaced when dependencies are built.
