file(REMOVE_RECURSE
  "CMakeFiles/fedms_byz.dir/attack.cpp.o"
  "CMakeFiles/fedms_byz.dir/attack.cpp.o.d"
  "CMakeFiles/fedms_byz.dir/attacks.cpp.o"
  "CMakeFiles/fedms_byz.dir/attacks.cpp.o.d"
  "CMakeFiles/fedms_byz.dir/client_attacks.cpp.o"
  "CMakeFiles/fedms_byz.dir/client_attacks.cpp.o.d"
  "libfedms_byz.a"
  "libfedms_byz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_byz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
