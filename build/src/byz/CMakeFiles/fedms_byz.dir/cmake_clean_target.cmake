file(REMOVE_RECURSE
  "libfedms_byz.a"
)
