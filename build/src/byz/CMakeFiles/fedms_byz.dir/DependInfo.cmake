
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/byz/attack.cpp" "src/byz/CMakeFiles/fedms_byz.dir/attack.cpp.o" "gcc" "src/byz/CMakeFiles/fedms_byz.dir/attack.cpp.o.d"
  "/root/repo/src/byz/attacks.cpp" "src/byz/CMakeFiles/fedms_byz.dir/attacks.cpp.o" "gcc" "src/byz/CMakeFiles/fedms_byz.dir/attacks.cpp.o.d"
  "/root/repo/src/byz/client_attacks.cpp" "src/byz/CMakeFiles/fedms_byz.dir/client_attacks.cpp.o" "gcc" "src/byz/CMakeFiles/fedms_byz.dir/client_attacks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
