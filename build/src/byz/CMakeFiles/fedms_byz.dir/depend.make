# Empty dependencies file for fedms_byz.
# This may be replaced when dependencies are built.
