file(REMOVE_RECURSE
  "libfedms_nn.a"
)
