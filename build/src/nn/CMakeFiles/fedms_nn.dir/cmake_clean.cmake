file(REMOVE_RECURSE
  "CMakeFiles/fedms_nn.dir/activations.cpp.o"
  "CMakeFiles/fedms_nn.dir/activations.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/fedms_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/fedms_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/classifier.cpp.o"
  "CMakeFiles/fedms_nn.dir/classifier.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/conv_layers.cpp.o"
  "CMakeFiles/fedms_nn.dir/conv_layers.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/dropout.cpp.o"
  "CMakeFiles/fedms_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/layer.cpp.o"
  "CMakeFiles/fedms_nn.dir/layer.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/linear.cpp.o"
  "CMakeFiles/fedms_nn.dir/linear.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/loss.cpp.o"
  "CMakeFiles/fedms_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/fedms_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedms_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/params.cpp.o"
  "CMakeFiles/fedms_nn.dir/params.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/pooling.cpp.o"
  "CMakeFiles/fedms_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/fedms_nn.dir/sequential.cpp.o"
  "CMakeFiles/fedms_nn.dir/sequential.cpp.o.d"
  "libfedms_nn.a"
  "libfedms_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
