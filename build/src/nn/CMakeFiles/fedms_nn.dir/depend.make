# Empty dependencies file for fedms_nn.
# This may be replaced when dependencies are built.
