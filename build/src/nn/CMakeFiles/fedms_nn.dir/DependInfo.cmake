
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/fedms_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/fedms_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/fedms_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/classifier.cpp" "src/nn/CMakeFiles/fedms_nn.dir/classifier.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/classifier.cpp.o.d"
  "/root/repo/src/nn/conv_layers.cpp" "src/nn/CMakeFiles/fedms_nn.dir/conv_layers.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/conv_layers.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/fedms_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/fedms_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/fedms_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fedms_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/fedms_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/fedms_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/params.cpp" "src/nn/CMakeFiles/fedms_nn.dir/params.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/params.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/fedms_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/fedms_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/fedms_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedms_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
