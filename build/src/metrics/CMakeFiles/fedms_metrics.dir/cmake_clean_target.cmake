file(REMOVE_RECURSE
  "libfedms_metrics.a"
)
