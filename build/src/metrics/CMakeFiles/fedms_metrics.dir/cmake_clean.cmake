file(REMOVE_RECURSE
  "CMakeFiles/fedms_metrics.dir/classification.cpp.o"
  "CMakeFiles/fedms_metrics.dir/classification.cpp.o.d"
  "CMakeFiles/fedms_metrics.dir/json.cpp.o"
  "CMakeFiles/fedms_metrics.dir/json.cpp.o.d"
  "CMakeFiles/fedms_metrics.dir/recorder.cpp.o"
  "CMakeFiles/fedms_metrics.dir/recorder.cpp.o.d"
  "CMakeFiles/fedms_metrics.dir/stats.cpp.o"
  "CMakeFiles/fedms_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/fedms_metrics.dir/table.cpp.o"
  "CMakeFiles/fedms_metrics.dir/table.cpp.o.d"
  "libfedms_metrics.a"
  "libfedms_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
