# Empty dependencies file for fedms_metrics.
# This may be replaced when dependencies are built.
