file(REMOVE_RECURSE
  "libfedms_data.a"
)
