file(REMOVE_RECURSE
  "CMakeFiles/fedms_data.dir/convex.cpp.o"
  "CMakeFiles/fedms_data.dir/convex.cpp.o.d"
  "CMakeFiles/fedms_data.dir/csv.cpp.o"
  "CMakeFiles/fedms_data.dir/csv.cpp.o.d"
  "CMakeFiles/fedms_data.dir/dataset.cpp.o"
  "CMakeFiles/fedms_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedms_data.dir/partition.cpp.o"
  "CMakeFiles/fedms_data.dir/partition.cpp.o.d"
  "CMakeFiles/fedms_data.dir/sampler.cpp.o"
  "CMakeFiles/fedms_data.dir/sampler.cpp.o.d"
  "CMakeFiles/fedms_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedms_data.dir/synthetic.cpp.o.d"
  "libfedms_data.a"
  "libfedms_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
