# Empty dependencies file for fedms_data.
# This may be replaced when dependencies are built.
