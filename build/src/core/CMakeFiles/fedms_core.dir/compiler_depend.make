# Empty compiler generated dependencies file for fedms_core.
# This may be replaced when dependencies are built.
