file(REMOVE_RECURSE
  "libfedms_core.a"
)
