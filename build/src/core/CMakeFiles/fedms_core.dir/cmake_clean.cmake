file(REMOVE_RECURSE
  "CMakeFiles/fedms_core.dir/cli.cpp.o"
  "CMakeFiles/fedms_core.dir/cli.cpp.o.d"
  "CMakeFiles/fedms_core.dir/contracts.cpp.o"
  "CMakeFiles/fedms_core.dir/contracts.cpp.o.d"
  "CMakeFiles/fedms_core.dir/log.cpp.o"
  "CMakeFiles/fedms_core.dir/log.cpp.o.d"
  "CMakeFiles/fedms_core.dir/rng.cpp.o"
  "CMakeFiles/fedms_core.dir/rng.cpp.o.d"
  "CMakeFiles/fedms_core.dir/stopwatch.cpp.o"
  "CMakeFiles/fedms_core.dir/stopwatch.cpp.o.d"
  "CMakeFiles/fedms_core.dir/thread_pool.cpp.o"
  "CMakeFiles/fedms_core.dir/thread_pool.cpp.o.d"
  "libfedms_core.a"
  "libfedms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
