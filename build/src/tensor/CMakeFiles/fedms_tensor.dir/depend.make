# Empty dependencies file for fedms_tensor.
# This may be replaced when dependencies are built.
