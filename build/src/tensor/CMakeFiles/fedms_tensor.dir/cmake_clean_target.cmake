file(REMOVE_RECURSE
  "libfedms_tensor.a"
)
