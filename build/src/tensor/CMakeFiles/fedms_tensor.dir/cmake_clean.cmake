file(REMOVE_RECURSE
  "CMakeFiles/fedms_tensor.dir/conv.cpp.o"
  "CMakeFiles/fedms_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/fedms_tensor.dir/conv_im2col.cpp.o"
  "CMakeFiles/fedms_tensor.dir/conv_im2col.cpp.o.d"
  "CMakeFiles/fedms_tensor.dir/ops.cpp.o"
  "CMakeFiles/fedms_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/fedms_tensor.dir/serialize.cpp.o"
  "CMakeFiles/fedms_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/fedms_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fedms_tensor.dir/tensor.cpp.o.d"
  "libfedms_tensor.a"
  "libfedms_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
