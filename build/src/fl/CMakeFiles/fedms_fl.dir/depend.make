# Empty dependencies file for fedms_fl.
# This may be replaced when dependencies are built.
