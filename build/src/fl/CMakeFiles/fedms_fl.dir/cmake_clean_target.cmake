file(REMOVE_RECURSE
  "libfedms_fl.a"
)
