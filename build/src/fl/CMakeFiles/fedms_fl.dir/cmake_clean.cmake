file(REMOVE_RECURSE
  "CMakeFiles/fedms_fl.dir/aggregators.cpp.o"
  "CMakeFiles/fedms_fl.dir/aggregators.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/compression.cpp.o"
  "CMakeFiles/fedms_fl.dir/compression.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/config.cpp.o"
  "CMakeFiles/fedms_fl.dir/config.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/experiment.cpp.o"
  "CMakeFiles/fedms_fl.dir/experiment.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/fedms.cpp.o"
  "CMakeFiles/fedms_fl.dir/fedms.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/learner.cpp.o"
  "CMakeFiles/fedms_fl.dir/learner.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/nn_learner.cpp.o"
  "CMakeFiles/fedms_fl.dir/nn_learner.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/quadratic_learner.cpp.o"
  "CMakeFiles/fedms_fl.dir/quadratic_learner.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/server.cpp.o"
  "CMakeFiles/fedms_fl.dir/server.cpp.o.d"
  "CMakeFiles/fedms_fl.dir/upload.cpp.o"
  "CMakeFiles/fedms_fl.dir/upload.cpp.o.d"
  "libfedms_fl.a"
  "libfedms_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
