
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregators.cpp" "src/fl/CMakeFiles/fedms_fl.dir/aggregators.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/aggregators.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/fedms_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/config.cpp" "src/fl/CMakeFiles/fedms_fl.dir/config.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/config.cpp.o.d"
  "/root/repo/src/fl/experiment.cpp" "src/fl/CMakeFiles/fedms_fl.dir/experiment.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/experiment.cpp.o.d"
  "/root/repo/src/fl/fedms.cpp" "src/fl/CMakeFiles/fedms_fl.dir/fedms.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/fedms.cpp.o.d"
  "/root/repo/src/fl/learner.cpp" "src/fl/CMakeFiles/fedms_fl.dir/learner.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/learner.cpp.o.d"
  "/root/repo/src/fl/nn_learner.cpp" "src/fl/CMakeFiles/fedms_fl.dir/nn_learner.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/nn_learner.cpp.o.d"
  "/root/repo/src/fl/quadratic_learner.cpp" "src/fl/CMakeFiles/fedms_fl.dir/quadratic_learner.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/quadratic_learner.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/fedms_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/upload.cpp" "src/fl/CMakeFiles/fedms_fl.dir/upload.cpp.o" "gcc" "src/fl/CMakeFiles/fedms_fl.dir/upload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedms_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedms_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/byz/CMakeFiles/fedms_byz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
