# Empty compiler generated dependencies file for fedms_net.
# This may be replaced when dependencies are built.
