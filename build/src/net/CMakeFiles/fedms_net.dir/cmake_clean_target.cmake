file(REMOVE_RECURSE
  "libfedms_net.a"
)
