file(REMOVE_RECURSE
  "CMakeFiles/fedms_net.dir/latency.cpp.o"
  "CMakeFiles/fedms_net.dir/latency.cpp.o.d"
  "CMakeFiles/fedms_net.dir/message.cpp.o"
  "CMakeFiles/fedms_net.dir/message.cpp.o.d"
  "CMakeFiles/fedms_net.dir/node_id.cpp.o"
  "CMakeFiles/fedms_net.dir/node_id.cpp.o.d"
  "CMakeFiles/fedms_net.dir/sim_network.cpp.o"
  "CMakeFiles/fedms_net.dir/sim_network.cpp.o.d"
  "libfedms_net.a"
  "libfedms_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
