# Empty dependencies file for fedms_sim.
# This may be replaced when dependencies are built.
