file(REMOVE_RECURSE
  "CMakeFiles/fedms_sim.dir/fedms_sim.cpp.o"
  "CMakeFiles/fedms_sim.dir/fedms_sim.cpp.o.d"
  "fedms_sim"
  "fedms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
