file(REMOVE_RECURSE
  "CMakeFiles/ablation_upload.dir/ablation_upload.cpp.o"
  "CMakeFiles/ablation_upload.dir/ablation_upload.cpp.o.d"
  "ablation_upload"
  "ablation_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
