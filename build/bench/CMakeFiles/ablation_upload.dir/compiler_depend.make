# Empty compiler generated dependencies file for ablation_upload.
# This may be replaced when dependencies are built.
