file(REMOVE_RECURSE
  "CMakeFiles/fig5_heterogeneity.dir/fig5_heterogeneity.cpp.o"
  "CMakeFiles/fig5_heterogeneity.dir/fig5_heterogeneity.cpp.o.d"
  "fig5_heterogeneity"
  "fig5_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
