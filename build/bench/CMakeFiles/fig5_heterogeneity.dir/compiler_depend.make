# Empty compiler generated dependencies file for fig5_heterogeneity.
# This may be replaced when dependencies are built.
