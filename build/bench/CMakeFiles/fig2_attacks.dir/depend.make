# Empty dependencies file for fig2_attacks.
# This may be replaced when dependencies are built.
