file(REMOVE_RECURSE
  "CMakeFiles/fig2_attacks.dir/fig2_attacks.cpp.o"
  "CMakeFiles/fig2_attacks.dir/fig2_attacks.cpp.o.d"
  "fig2_attacks"
  "fig2_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
