file(REMOVE_RECURSE
  "CMakeFiles/ext_centralized.dir/ext_centralized.cpp.o"
  "CMakeFiles/ext_centralized.dir/ext_centralized.cpp.o.d"
  "ext_centralized"
  "ext_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
