# Empty dependencies file for ext_centralized.
# This may be replaced when dependencies are built.
