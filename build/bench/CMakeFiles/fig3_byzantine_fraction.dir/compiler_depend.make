# Empty compiler generated dependencies file for fig3_byzantine_fraction.
# This may be replaced when dependencies are built.
