# Empty compiler generated dependencies file for micro_aggregators.
# This may be replaced when dependencies are built.
