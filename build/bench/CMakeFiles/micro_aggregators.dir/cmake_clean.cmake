file(REMOVE_RECURSE
  "CMakeFiles/micro_aggregators.dir/micro_aggregators.cpp.o"
  "CMakeFiles/micro_aggregators.dir/micro_aggregators.cpp.o.d"
  "micro_aggregators"
  "micro_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
