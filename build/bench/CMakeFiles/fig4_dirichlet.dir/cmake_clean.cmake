file(REMOVE_RECURSE
  "CMakeFiles/fig4_dirichlet.dir/fig4_dirichlet.cpp.o"
  "CMakeFiles/fig4_dirichlet.dir/fig4_dirichlet.cpp.o.d"
  "fig4_dirichlet"
  "fig4_dirichlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dirichlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
