# Empty compiler generated dependencies file for fig4_dirichlet.
# This may be replaced when dependencies are built.
