file(REMOVE_RECURSE
  "CMakeFiles/theory_convergence.dir/theory_convergence.cpp.o"
  "CMakeFiles/theory_convergence.dir/theory_convergence.cpp.o.d"
  "theory_convergence"
  "theory_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
