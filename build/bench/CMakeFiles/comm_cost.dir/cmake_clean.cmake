file(REMOVE_RECURSE
  "CMakeFiles/comm_cost.dir/comm_cost.cpp.o"
  "CMakeFiles/comm_cost.dir/comm_cost.cpp.o.d"
  "comm_cost"
  "comm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
