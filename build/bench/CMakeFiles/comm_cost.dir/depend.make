# Empty dependencies file for comm_cost.
# This may be replaced when dependencies are built.
