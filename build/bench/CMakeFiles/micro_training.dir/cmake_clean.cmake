file(REMOVE_RECURSE
  "CMakeFiles/micro_training.dir/micro_training.cpp.o"
  "CMakeFiles/micro_training.dir/micro_training.cpp.o.d"
  "micro_training"
  "micro_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
