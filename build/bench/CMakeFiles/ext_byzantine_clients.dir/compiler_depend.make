# Empty compiler generated dependencies file for ext_byzantine_clients.
# This may be replaced when dependencies are built.
