file(REMOVE_RECURSE
  "CMakeFiles/ext_byzantine_clients.dir/ext_byzantine_clients.cpp.o"
  "CMakeFiles/ext_byzantine_clients.dir/ext_byzantine_clients.cpp.o.d"
  "ext_byzantine_clients"
  "ext_byzantine_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_byzantine_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
