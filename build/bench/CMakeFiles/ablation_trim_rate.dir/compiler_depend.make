# Empty compiler generated dependencies file for ablation_trim_rate.
# This may be replaced when dependencies are built.
