file(REMOVE_RECURSE
  "CMakeFiles/ablation_trim_rate.dir/ablation_trim_rate.cpp.o"
  "CMakeFiles/ablation_trim_rate.dir/ablation_trim_rate.cpp.o.d"
  "ablation_trim_rate"
  "ablation_trim_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trim_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
