# Empty dependencies file for fl_dp_test.
# This may be replaced when dependencies are built.
