file(REMOVE_RECURSE
  "CMakeFiles/fl_dp_test.dir/fl_dp_test.cpp.o"
  "CMakeFiles/fl_dp_test.dir/fl_dp_test.cpp.o.d"
  "fl_dp_test"
  "fl_dp_test.pdb"
  "fl_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
