# Empty dependencies file for metrics_classification_test.
# This may be replaced when dependencies are built.
