file(REMOVE_RECURSE
  "CMakeFiles/metrics_classification_test.dir/metrics_classification_test.cpp.o"
  "CMakeFiles/metrics_classification_test.dir/metrics_classification_test.cpp.o.d"
  "metrics_classification_test"
  "metrics_classification_test.pdb"
  "metrics_classification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_classification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
