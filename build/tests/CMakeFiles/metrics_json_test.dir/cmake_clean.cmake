file(REMOVE_RECURSE
  "CMakeFiles/metrics_json_test.dir/metrics_json_test.cpp.o"
  "CMakeFiles/metrics_json_test.dir/metrics_json_test.cpp.o.d"
  "metrics_json_test"
  "metrics_json_test.pdb"
  "metrics_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
