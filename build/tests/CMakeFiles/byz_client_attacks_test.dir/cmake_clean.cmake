file(REMOVE_RECURSE
  "CMakeFiles/byz_client_attacks_test.dir/byz_client_attacks_test.cpp.o"
  "CMakeFiles/byz_client_attacks_test.dir/byz_client_attacks_test.cpp.o.d"
  "byz_client_attacks_test"
  "byz_client_attacks_test.pdb"
  "byz_client_attacks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byz_client_attacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
