# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for byz_client_attacks_test.
