# Empty compiler generated dependencies file for byz_client_attacks_test.
# This may be replaced when dependencies are built.
