# Empty compiler generated dependencies file for fl_lemmas_test.
# This may be replaced when dependencies are built.
