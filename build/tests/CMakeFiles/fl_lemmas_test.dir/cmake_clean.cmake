file(REMOVE_RECURSE
  "CMakeFiles/fl_lemmas_test.dir/fl_lemmas_test.cpp.o"
  "CMakeFiles/fl_lemmas_test.dir/fl_lemmas_test.cpp.o.d"
  "fl_lemmas_test"
  "fl_lemmas_test.pdb"
  "fl_lemmas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_lemmas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
