file(REMOVE_RECURSE
  "CMakeFiles/nn_optimizer_extras_test.dir/nn_optimizer_extras_test.cpp.o"
  "CMakeFiles/nn_optimizer_extras_test.dir/nn_optimizer_extras_test.cpp.o.d"
  "nn_optimizer_extras_test"
  "nn_optimizer_extras_test.pdb"
  "nn_optimizer_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_optimizer_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
