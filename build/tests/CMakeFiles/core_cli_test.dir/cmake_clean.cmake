file(REMOVE_RECURSE
  "CMakeFiles/core_cli_test.dir/core_cli_test.cpp.o"
  "CMakeFiles/core_cli_test.dir/core_cli_test.cpp.o.d"
  "core_cli_test"
  "core_cli_test.pdb"
  "core_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
