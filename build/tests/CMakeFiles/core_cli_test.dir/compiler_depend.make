# Empty compiler generated dependencies file for core_cli_test.
# This may be replaced when dependencies are built.
