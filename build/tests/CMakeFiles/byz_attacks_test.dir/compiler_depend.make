# Empty compiler generated dependencies file for byz_attacks_test.
# This may be replaced when dependencies are built.
