file(REMOVE_RECURSE
  "CMakeFiles/fl_config_test.dir/fl_config_test.cpp.o"
  "CMakeFiles/fl_config_test.dir/fl_config_test.cpp.o.d"
  "fl_config_test"
  "fl_config_test.pdb"
  "fl_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
