# Empty compiler generated dependencies file for fl_config_test.
# This may be replaced when dependencies are built.
