# Empty compiler generated dependencies file for fl_robust_aggregators_test.
# This may be replaced when dependencies are built.
