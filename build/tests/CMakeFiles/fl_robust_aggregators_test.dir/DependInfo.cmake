
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl_robust_aggregators_test.cpp" "tests/CMakeFiles/fl_robust_aggregators_test.dir/fl_robust_aggregators_test.cpp.o" "gcc" "tests/CMakeFiles/fl_robust_aggregators_test.dir/fl_robust_aggregators_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/fedms_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fedms_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedms_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedms_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/byz/CMakeFiles/fedms_byz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
