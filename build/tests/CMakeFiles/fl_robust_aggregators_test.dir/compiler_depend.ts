# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fl_robust_aggregators_test.
