file(REMOVE_RECURSE
  "CMakeFiles/fl_robust_aggregators_test.dir/fl_robust_aggregators_test.cpp.o"
  "CMakeFiles/fl_robust_aggregators_test.dir/fl_robust_aggregators_test.cpp.o.d"
  "fl_robust_aggregators_test"
  "fl_robust_aggregators_test.pdb"
  "fl_robust_aggregators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_robust_aggregators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
