file(REMOVE_RECURSE
  "CMakeFiles/fl_quadratic_test.dir/fl_quadratic_test.cpp.o"
  "CMakeFiles/fl_quadratic_test.dir/fl_quadratic_test.cpp.o.d"
  "fl_quadratic_test"
  "fl_quadratic_test.pdb"
  "fl_quadratic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_quadratic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
