# Empty compiler generated dependencies file for fl_quadratic_test.
# This may be replaced when dependencies are built.
