file(REMOVE_RECURSE
  "CMakeFiles/tensor_serialize_test.dir/tensor_serialize_test.cpp.o"
  "CMakeFiles/tensor_serialize_test.dir/tensor_serialize_test.cpp.o.d"
  "tensor_serialize_test"
  "tensor_serialize_test.pdb"
  "tensor_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
