# Empty dependencies file for fl_upload_test.
# This may be replaced when dependencies are built.
