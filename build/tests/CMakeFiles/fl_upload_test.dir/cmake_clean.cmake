file(REMOVE_RECURSE
  "CMakeFiles/fl_upload_test.dir/fl_upload_test.cpp.o"
  "CMakeFiles/fl_upload_test.dir/fl_upload_test.cpp.o.d"
  "fl_upload_test"
  "fl_upload_test.pdb"
  "fl_upload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_upload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
