file(REMOVE_RECURSE
  "CMakeFiles/fl_execution_test.dir/fl_execution_test.cpp.o"
  "CMakeFiles/fl_execution_test.dir/fl_execution_test.cpp.o.d"
  "fl_execution_test"
  "fl_execution_test.pdb"
  "fl_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
