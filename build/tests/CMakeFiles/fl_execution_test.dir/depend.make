# Empty dependencies file for fl_execution_test.
# This may be replaced when dependencies are built.
