# Empty dependencies file for fl_aggregators_test.
# This may be replaced when dependencies are built.
