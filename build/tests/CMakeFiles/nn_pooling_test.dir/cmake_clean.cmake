file(REMOVE_RECURSE
  "CMakeFiles/nn_pooling_test.dir/nn_pooling_test.cpp.o"
  "CMakeFiles/nn_pooling_test.dir/nn_pooling_test.cpp.o.d"
  "nn_pooling_test"
  "nn_pooling_test.pdb"
  "nn_pooling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_pooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
