# Empty dependencies file for nn_pooling_test.
# This may be replaced when dependencies are built.
