file(REMOVE_RECURSE
  "CMakeFiles/nn_params_test.dir/nn_params_test.cpp.o"
  "CMakeFiles/nn_params_test.dir/nn_params_test.cpp.o.d"
  "nn_params_test"
  "nn_params_test.pdb"
  "nn_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
