# Empty dependencies file for nn_params_test.
# This may be replaced when dependencies are built.
