# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fl_byz_clients_integration_test.
