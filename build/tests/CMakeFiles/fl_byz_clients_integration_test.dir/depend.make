# Empty dependencies file for fl_byz_clients_integration_test.
# This may be replaced when dependencies are built.
