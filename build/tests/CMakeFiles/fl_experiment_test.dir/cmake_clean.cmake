file(REMOVE_RECURSE
  "CMakeFiles/fl_experiment_test.dir/fl_experiment_test.cpp.o"
  "CMakeFiles/fl_experiment_test.dir/fl_experiment_test.cpp.o.d"
  "fl_experiment_test"
  "fl_experiment_test.pdb"
  "fl_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
