# Empty compiler generated dependencies file for fl_experiment_test.
# This may be replaced when dependencies are built.
