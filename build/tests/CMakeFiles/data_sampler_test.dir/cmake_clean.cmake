file(REMOVE_RECURSE
  "CMakeFiles/data_sampler_test.dir/data_sampler_test.cpp.o"
  "CMakeFiles/data_sampler_test.dir/data_sampler_test.cpp.o.d"
  "data_sampler_test"
  "data_sampler_test.pdb"
  "data_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
