# Empty dependencies file for data_sampler_test.
# This may be replaced when dependencies are built.
