file(REMOVE_RECURSE
  "CMakeFiles/core_thread_pool_test.dir/core_thread_pool_test.cpp.o"
  "CMakeFiles/core_thread_pool_test.dir/core_thread_pool_test.cpp.o.d"
  "core_thread_pool_test"
  "core_thread_pool_test.pdb"
  "core_thread_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
