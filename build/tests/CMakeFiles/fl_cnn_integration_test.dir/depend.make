# Empty dependencies file for fl_cnn_integration_test.
# This may be replaced when dependencies are built.
