file(REMOVE_RECURSE
  "CMakeFiles/fl_cnn_integration_test.dir/fl_cnn_integration_test.cpp.o"
  "CMakeFiles/fl_cnn_integration_test.dir/fl_cnn_integration_test.cpp.o.d"
  "fl_cnn_integration_test"
  "fl_cnn_integration_test.pdb"
  "fl_cnn_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_cnn_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
