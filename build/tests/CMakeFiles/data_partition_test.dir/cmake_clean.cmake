file(REMOVE_RECURSE
  "CMakeFiles/data_partition_test.dir/data_partition_test.cpp.o"
  "CMakeFiles/data_partition_test.dir/data_partition_test.cpp.o.d"
  "data_partition_test"
  "data_partition_test.pdb"
  "data_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
