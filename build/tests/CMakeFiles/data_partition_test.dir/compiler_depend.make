# Empty compiler generated dependencies file for data_partition_test.
# This may be replaced when dependencies are built.
