# Empty compiler generated dependencies file for data_convex_test.
# This may be replaced when dependencies are built.
