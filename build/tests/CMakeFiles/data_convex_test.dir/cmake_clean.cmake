file(REMOVE_RECURSE
  "CMakeFiles/data_convex_test.dir/data_convex_test.cpp.o"
  "CMakeFiles/data_convex_test.dir/data_convex_test.cpp.o.d"
  "data_convex_test"
  "data_convex_test.pdb"
  "data_convex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_convex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
