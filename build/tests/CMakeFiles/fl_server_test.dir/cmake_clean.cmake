file(REMOVE_RECURSE
  "CMakeFiles/fl_server_test.dir/fl_server_test.cpp.o"
  "CMakeFiles/fl_server_test.dir/fl_server_test.cpp.o.d"
  "fl_server_test"
  "fl_server_test.pdb"
  "fl_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
