# Empty compiler generated dependencies file for fl_server_test.
# This may be replaced when dependencies are built.
