# Empty compiler generated dependencies file for fl_compression_test.
# This may be replaced when dependencies are built.
