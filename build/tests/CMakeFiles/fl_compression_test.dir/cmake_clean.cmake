file(REMOVE_RECURSE
  "CMakeFiles/fl_compression_test.dir/fl_compression_test.cpp.o"
  "CMakeFiles/fl_compression_test.dir/fl_compression_test.cpp.o.d"
  "fl_compression_test"
  "fl_compression_test.pdb"
  "fl_compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
