// fedms_fuzz — deterministic schedule fuzzer for the Fed-MS stack.
//
// Expands 64-bit seeds into random round schedules (topology, attacks,
// timeout windows, scripted message faults) and runs each through the
// execution paths the schedule selects: sync-vs-async differential parity,
// scripted-fault determinism double-runs, or sync-vs-transport agreement —
// all under the invariant oracles (Theorem-1 envelope, finiteness, trace
// causality, canonical stage order, wire round-trips).
//
//   ./build/tools/fedms_fuzz --seeds 200            # fresh seeds
//   ./build/tools/fedms_fuzz --corpus tests/fuzz/corpus.txt --seeds 50
//   ./build/tools/fedms_fuzz --seed 0x1234abcd      # one schedule
//   ./build/tools/fedms_fuzz --replay repro.json    # re-run a failure
//   ./build/tools/fedms_fuzz --self-test            # planted-bug pipeline
//
// A failing schedule is shrunk (greedy event removal) and written to a
// JSON repro file that --replay re-executes bit-for-bit (same violation,
// same event-trace hash).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.h"
#include "testing/fuzz.h"
#include "testing/test_seed.h"

namespace {

using namespace fedms;

std::uint64_t parse_u64(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "fedms_fuzz: error: %s must be an integer, got "
                 "\"%s\"\n", what, text.c_str());
    std::exit(1);
  }
  return value;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fedms_fuzz: error: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::fprintf(stderr, "fedms_fuzz: error: cannot write %s\n",
                 path.c_str());
    std::exit(1);
  }
}

std::vector<std::uint64_t> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fedms_fuzz: error: cannot read corpus %s\n",
                 path.c_str());
    std::exit(1);
  }
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    const std::size_t stop = line.find_last_not_of(" \t\r");
    seeds.push_back(parse_u64(line.substr(start, stop - start + 1),
                              "corpus seed"));
  }
  return seeds;
}

struct Tally {
  std::size_t parity = 0, fault = 0, transport = 0;
  std::size_t filter_events = 0;

  void count(const testing::FuzzSchedule& schedule,
             const testing::FuzzOutcome& outcome) {
    switch (schedule.kind) {
      case testing::ScheduleKind::kParity: ++parity; break;
      case testing::ScheduleKind::kFault: ++fault; break;
      case testing::ScheduleKind::kTransport: ++transport; break;
    }
    filter_events += outcome.filter_events;
  }
};

// Shrinks, writes the repro file, and prints the failure report. Returns
// the repro path.
std::string report_failure(const testing::FuzzSchedule& schedule,
                           const testing::FuzzOutcome& outcome,
                           const testing::FuzzOptions& options,
                           const std::string& repro_dir) {
  std::size_t shrink_runs = 0;
  const testing::FuzzSchedule minimal = testing::shrink_schedule(
      schedule, options, outcome.violation->oracle, &shrink_runs);

  char name[64];
  std::snprintf(name, sizeof name, "fedms-fuzz-repro-%016llx.json",
                static_cast<unsigned long long>(schedule.seed));
  const std::string path =
      (repro_dir.empty() ? std::string(".") : repro_dir) + "/" + name;
  write_file(path, testing::repro_json(minimal, *outcome.violation, options));

  std::printf("FAIL seed=0x%llx kind=%s oracle=%s\n",
              static_cast<unsigned long long>(schedule.seed),
              testing::to_string(schedule.kind),
              outcome.violation->oracle.c_str());
  std::printf("  %s\n", outcome.violation->detail.c_str());
  std::printf("  shrunk to %zu schedule events (%zu shrink runs)\n",
              minimal.events.size(), shrink_runs);
  std::printf("  repro written: %s\n", path.c_str());
  std::printf("  replay:        ./build/tools/fedms_fuzz --replay %s\n",
              path.c_str());
  std::string plant_flags;
  if (options.inject_under_trim) plant_flags += " --inject-under-trim";
  if (options.inject_ghost_churn) plant_flags += " --inject-ghost-churn";
  if (options.inject_mode_drift) plant_flags += " --inject-mode-drift";
  if (options.inject_adaptive_undertrim)
    plant_flags += " --inject-adaptive-undertrim";
  std::printf("  rerun seed:    ./build/tools/fedms_fuzz --seed 0x%llx%s\n",
              static_cast<unsigned long long>(schedule.seed),
              plant_flags.c_str());
  return path;
}

int run_seeds(const std::vector<std::uint64_t>& seeds,
              const testing::FuzzOptions& options,
              const std::string& repro_dir) {
  Tally tally;
  for (const std::uint64_t seed : seeds) {
    const testing::FuzzSchedule schedule = testing::generate_schedule(seed);
    const testing::FuzzOutcome outcome =
        testing::run_schedule(schedule, options);
    if (!outcome.passed()) {
      report_failure(schedule, outcome, options, repro_dir);
      return 1;
    }
    tally.count(schedule, outcome);
  }
  std::printf("ok: %zu schedules (%zu parity, %zu fault, %zu transport), "
              "%zu filter decisions checked\n",
              seeds.size(), tally.parity, tally.fault, tally.transport,
              tally.filter_events);
  return 0;
}

int replay(const std::string& path, bool shrink,
           const std::string& repro_dir) {
  const testing::Repro repro = testing::load_repro(read_file(path));
  const testing::FuzzOutcome outcome =
      testing::run_schedule(repro.schedule, repro.options);

  if (repro.oracle.empty()) {
    // A plain schedule file: just report the outcome.
    if (outcome.passed()) {
      std::printf("ok: schedule passed (trace hash %016llx)\n",
                  static_cast<unsigned long long>(outcome.trace_hash));
      return 0;
    }
    report_failure(repro.schedule, outcome, repro.options, repro_dir);
    return 1;
  }

  if (!outcome.violation) {
    std::printf("NOT REPRODUCED: %s recorded oracle=%s but the schedule "
                "now passes\n", path.c_str(), repro.oracle.c_str());
    return 1;
  }
  if (outcome.violation->oracle != repro.oracle ||
      outcome.violation->detail != repro.detail) {
    std::printf("DIVERGED: recorded %s \"%s\"\n       got %s \"%s\"\n",
                repro.oracle.c_str(), repro.detail.c_str(),
                outcome.violation->oracle.c_str(),
                outcome.violation->detail.c_str());
    return 1;
  }
  std::printf("reproduced bit-for-bit: oracle=%s trace hash %016llx\n",
              repro.oracle.c_str(),
              static_cast<unsigned long long>(outcome.trace_hash));
  std::printf("  %s\n", outcome.violation->detail.c_str());
  if (shrink) {
    std::size_t runs = 0;
    const testing::FuzzSchedule minimal = testing::shrink_schedule(
        repro.schedule, repro.options, repro.oracle, &runs);
    std::printf("  shrinks to %zu schedule events (%zu runs)\n",
                minimal.events.size(), runs);
  }
  return 0;
}

// One planted-bug pipeline check: the scenario must (a) pass the oracles
// when nothing is planted, (b) trip exactly `expected_oracle` when the
// plant is armed, (c) write a repro that replays bit-for-bit, and
// (d) shrink to at most `max_events` schedule events.
int check_plant(const char* label, const testing::FuzzSchedule& scenario,
                const testing::FuzzOptions& inject,
                const char* expected_oracle, const std::string& repro_dir,
                std::size_t max_events) {
  const testing::FuzzOutcome clean = testing::run_schedule(scenario, {});
  if (!clean.passed() || clean.filter_events == 0) {
    std::printf("self-test [%s] FAILED: clean run %s (filter decisions "
                "%zu)\n",
                label,
                clean.passed() ? "passed" : clean.violation->detail.c_str(),
                clean.filter_events);
    return 1;
  }

  const testing::FuzzOutcome planted = testing::run_schedule(scenario,
                                                             inject);
  if (planted.passed() || planted.violation->oracle != expected_oracle) {
    std::printf("self-test [%s] FAILED: plant not caught by the %s oracle "
                "(%s)\n",
                label, expected_oracle,
                planted.passed() ? "run passed"
                                 : planted.violation->oracle.c_str());
    return 1;
  }

  const std::string path =
      (repro_dir.empty() ? std::string(".") : repro_dir) +
      "/fedms-fuzz-self-test-" + label + ".json";
  write_file(path,
             testing::repro_json(scenario, *planted.violation, inject));
  const testing::Repro repro = testing::load_repro(read_file(path));
  const testing::FuzzOutcome replayed =
      testing::run_schedule(repro.schedule, repro.options);
  std::remove(path.c_str());
  if (!replayed.violation ||
      replayed.violation->detail != planted.violation->detail ||
      replayed.trace_hash != planted.trace_hash) {
    std::printf("self-test [%s] FAILED: repro did not replay bit-for-bit\n",
                label);
    return 1;
  }

  std::size_t runs = 0;
  const testing::FuzzSchedule minimal = testing::shrink_schedule(
      scenario, inject, expected_oracle, &runs);
  if (minimal.events.size() > max_events) {
    std::printf("self-test [%s] FAILED: shrunk schedule still has %zu "
                "events\n",
                label, minimal.events.size());
    return 1;
  }

  std::printf("self-test ok [%s]: %s oracle caught the plant (%s), repro "
              "replayed bit-for-bit, shrunk to %zu event(s)\n",
              label, expected_oracle, planted.violation->detail.c_str(),
              minimal.events.size());
  return 0;
}

// End-to-end pipeline checks against hand-planted bugs: the PR 4
// degraded-set under-trim regression (envelope oracle), an adaptive
// estimator that under-shoots the true B (envelope oracle again, via the
// adaptive filter's reported B̂), a ghost-churn membership desync (trace
// oracle, exercising the churn machinery plus the shrinker's
// invalid-candidate guard), and a rounding-mode drift (parity oracle,
// exercising the fuzz space's numerics axis).
int self_test(const std::string& repro_dir) {
  testing::FuzzOptions under_trim;
  under_trim.inject_under_trim = true;
  if (check_plant("under-trim", testing::under_trim_scenario(), under_trim,
                  "envelope", repro_dir, /*max_events=*/10) != 0)
    return 1;

  // The decoy drop must shrink away entirely: the adaptive plant fires on
  // every filter decision regardless of the fault schedule.
  testing::FuzzOptions adaptive;
  adaptive.inject_adaptive_undertrim = true;
  if (check_plant("adaptive-undertrim",
                  testing::adaptive_under_trim_scenario(), adaptive,
                  "envelope", repro_dir, /*max_events=*/0) != 0)
    return 1;

  testing::FuzzOptions ghost;
  ghost.inject_ghost_churn = true;
  if (check_plant("ghost-churn", testing::churn_ghost_scenario(), ghost,
                  "trace", repro_dir, /*max_events=*/1) != 0)
    return 1;

  // The mode-drift plant is only visible under a directed rounding mode:
  // under "nearest" the forced-nearest recompute is bitwise a no-op (that
  // is the determinism contract), so the armed plant must still pass —
  // checked first, then the directed-mode scenario must trip parity.
  testing::FuzzOptions drift;
  drift.inject_mode_drift = true;
  testing::FuzzSchedule nearest = testing::mode_drift_scenario();
  nearest.rounding_mode = "nearest";
  const testing::FuzzOutcome noop = testing::run_schedule(nearest, drift);
  if (!noop.passed()) {
    std::printf("self-test [mode-drift] FAILED: armed plant under nearest "
                "should be a bitwise no-op but tripped %s (%s)\n",
                noop.violation->oracle.c_str(),
                noop.violation->detail.c_str());
    return 1;
  }
  return check_plant("mode-drift", testing::mode_drift_scenario(), drift,
                     "parity", repro_dir, /*max_events=*/0);
}

}  // namespace

int main(int argc, char** argv) {
  core::CliFlags flags(
      "fedms_fuzz: seed-driven deterministic fuzz harness — random round "
      "schedules through the sync/async/transport paths under differential "
      "and invariant oracles");
  flags.add_int("seeds", 50, "number of freshly generated seeds to run");
  flags.add_string("seed-base", "",
                   "first fresh seed (default: FEDMS_TEST_SEED or "
                   "0x5eedf00d); seed i = base + i");
  flags.add_string("seed", "", "run exactly this one seed and exit");
  flags.add_string("corpus", "",
                   "newline-separated seed list to run before fresh seeds "
                   "('#' comments)");
  flags.add_string("replay", "", "re-execute a repro/schedule JSON file");
  flags.add_bool("shrink", false,
                 "with --replay: also greedily minimize the schedule");
  flags.add_bool("inject-under-trim", false,
                 "plant the degraded-set under-trim bug in every client "
                 "filter (oracle calibration)");
  flags.add_bool("inject-ghost-churn", false,
                 "execute schedules with their join/leave events ignored "
                 "while the causality oracle still expects them (oracle "
                 "calibration)");
  flags.add_bool("inject-mode-drift", false,
                 "recompute every client filter under round-to-nearest "
                 "regardless of the schedule's rounding mode (oracle "
                 "calibration)");
  flags.add_bool("inject-adaptive-undertrim", false,
                 "rebuild every adaptive filter decision with one trim "
                 "fewer than the reported estimate B-hat (oracle "
                 "calibration)");
  flags.add_bool("self-test", false,
                 "verify the fail->repro->replay->shrink pipeline against "
                 "the planted under-trim, adaptive-undertrim, ghost-churn, "
                 "and mode-drift bugs");
  flags.add_string("repro-dir", ".",
                   "directory for repro files written on failure");
  if (!flags.parse(argc, argv)) return 1;

  const std::string repro_dir = flags.get_string("repro-dir");
  if (flags.get_bool("self-test")) return self_test(repro_dir);
  if (!flags.get_string("replay").empty())
    return replay(flags.get_string("replay"), flags.get_bool("shrink"),
                  repro_dir);

  testing::FuzzOptions options;
  options.inject_under_trim = flags.get_bool("inject-under-trim");
  options.inject_ghost_churn = flags.get_bool("inject-ghost-churn");
  options.inject_mode_drift = flags.get_bool("inject-mode-drift");
  options.inject_adaptive_undertrim =
      flags.get_bool("inject-adaptive-undertrim");

  if (!flags.get_string("seed").empty()) {
    const std::uint64_t seed =
        parse_u64(flags.get_string("seed"), "--seed");
    return run_seeds({seed}, options, repro_dir);
  }

  std::vector<std::uint64_t> seeds;
  if (!flags.get_string("corpus").empty())
    seeds = load_corpus(flags.get_string("corpus"));
  const std::uint64_t base =
      flags.get_string("seed-base").empty()
          ? testing::test_seed(0x5eedf00d)
          : parse_u64(flags.get_string("seed-base"), "--seed-base");
  const std::int64_t fresh = flags.get_int("seeds");
  for (std::int64_t i = 0; i < fresh; ++i)
    seeds.push_back(base + std::uint64_t(i));
  if (testing::test_seed_overridden())
    std::printf("# FEDMS_TEST_SEED override active: seed base 0x%llx\n",
                static_cast<unsigned long long>(base));
  return run_seeds(seeds, options, repro_dir);
}
