// fedms_node — single Fed-MS roles over a real transport, plus a launcher
// that runs whole multi-process rounds on localhost.
//
// Modes:
//   --mode inmem              all K+P nodes as threads over the in-memory
//                             hub (the reference transport run)
//   --mode launch             fork/exec one process per node over Unix
//                             sockets (--backend unix, default) or
//                             localhost TCP (--backend tcp), then collect
//                             per-node report files
//   --mode client --index k   one client process (used by the launcher)
//   --mode server --index p   one PS process (used by the launcher)
//
// Every process re-derives its node's state from the shared (seed, config)
// pair, so the run needs no coordinator beyond the sockets themselves.
// With --verify the launcher re-runs the identical configuration on the
// in-process simulator and checks that final accuracy and per-client model
// CRCs are bit-for-bit equal and that measured per-direction data bytes
// match the simulated wire_size accounting exactly.
//
//   ./build/tools/fedms_node --mode launch --clients 4 --servers 2
//       --byzantine 1 --rounds 2 --verify

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <cfenv>

#include "byz/attack.h"
#include "core/cli.h"
#include "core/contracts.h"
#include "core/rounding.h"
#include "core/thread_pool.h"
#include "eventloop/server.h"
#include "fl/aggregators.h"
#include "fl/experiment.h"
#include "fl/upload.h"
#include "fl/wire_encoding.h"
#include "obs/obs.h"
#include "obs/trace_merge.h"
#include "transport/frame.h"
#include "transport/node_runner.h"
#include "transport/socket_transport.h"
#include "transport/transport.h"

namespace {

using namespace fedms;

// C99 hexfloat: the child re-parses exactly the launcher's double, so the
// per-node participation draws replay the verify simulator's bit-for-bit.
// Hex-float text is exact in both directions — unlike decimal, where
// snprintf/strtod obey the ambient fenv mode (to_string(0.3) becomes
// "0.299999" under FE_TOWARDZERO) and a forked node would train with
// different flag values than the parent's reference simulator.  EVERY
// double forwarded through child_args must go through this.
std::string exact_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

struct NodeCli {
  fl::WorkloadConfig workload;
  fl::FedMsConfig fed;
  std::string mode = "inmem";
  std::string backend = "unix";
  std::string runtime = "blocking";
  std::string rounding_mode;  // "" = leave the ambient fenv mode alone
  std::size_t filter_threads = 0;
  std::size_t index = 0;
  std::string socket_dir;
  std::string report_dir;
  std::string trace_dir;
  int tcp_port_base = 0;
  double timeout_seconds = 120.0;
  double corrupt_rate = 0.0;
  std::uint64_t corrupt_seed = 0;
  bool verify = false;
};

std::vector<transport::SocketAddress> server_addresses(const NodeCli& cli) {
  std::vector<transport::SocketAddress> addresses;
  addresses.reserve(cli.fed.servers);
  for (std::size_t p = 0; p < cli.fed.servers; ++p) {
    if (cli.backend == "unix")
      addresses.push_back(transport::SocketAddress::unix_path(
          cli.socket_dir + "/ps" + std::to_string(p) + ".sock"));
    else
      addresses.push_back(transport::SocketAddress::tcp(
          "127.0.0.1", std::uint16_t(cli.tcp_port_base + int(p))));
  }
  return addresses;
}

transport::SocketTransportOptions socket_options(const NodeCli& cli,
                                                 const net::NodeId& self) {
  transport::SocketTransportOptions options;
  options.payload_codec = cli.fed.upload_compression;
  // Only clients announce: broadcasts come back in this encoding. Uploads
  // need no announcement — frames are self-describing.
  if (self.kind == net::NodeKind::kClient)
    options.wire_encoding = cli.fed.wire_encoding;
  options.corrupt_rate = cli.corrupt_rate;
  // Distinct deterministic corruption stream per process.
  options.corrupt_seed =
      cli.corrupt_seed +
      (self.kind == net::NodeKind::kServer ? 1000000 : 0) + self.index;
  return options;
}

std::string report_path(const NodeCli& cli, const net::NodeId& self) {
  const char* role = self.kind == net::NodeKind::kClient ? "client" : "server";
  return cli.report_dir + "/" + role + std::to_string(self.index) +
         ".report";
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
    throw std::runtime_error("cannot create directory " + path);
}

std::string trace_path(const NodeCli& cli, const net::NodeId& self) {
  const char* role = self.kind == net::NodeKind::kClient ? "client" : "server";
  return cli.trace_dir + "/" + role + std::to_string(self.index) +
         ".trace.json";
}

void write_report(const NodeCli& cli, const transport::NodeReport& report) {
  const std::string path = report_path(cli, report.self);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << transport::to_report_text(report);
}

transport::NodeReport read_report(const NodeCli& cli,
                                  const net::NodeId& self) {
  const std::string path = report_path(cli, self);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing report " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return transport::parse_report_text(text.str());
}

// RAII: installs a sharded-aggregation pool for --filter-threads > 0 and
// uninstalls it before the pool dies.
struct FilterPool {
  explicit FilterPool(std::size_t threads) {
    if (threads > 0) {
      pool = std::make_unique<core::ThreadPool>(threads);
      fl::set_aggregation_pool(pool.get());
    }
  }
  ~FilterPool() {
    if (pool != nullptr) fl::set_aggregation_pool(nullptr);
  }
  std::unique_ptr<core::ThreadPool> pool;
};

int run_client_process(const NodeCli& cli) {
  const net::NodeId self = net::client_id(cli.index);
  if (!cli.trace_dir.empty()) {
    obs::set_process_identity("client", cli.index);
    obs::set_enabled(true);
  }
  const fl::Workload data = fl::make_workload(cli.workload, cli.fed);
  const FilterPool filter_pool(cli.filter_threads);
  auto transport = transport::SocketTransport::connect_mesh(
      self, server_addresses(cli), socket_options(cli, self));
  const transport::NodeReport report = transport::run_client_node(
      *transport, data, cli.workload, cli.fed, cli.index,
      cli.timeout_seconds);
  write_report(cli, report);
  if (!cli.trace_dir.empty()) {
    obs::set_enabled(false);
    obs::save_chrome_trace(trace_path(cli, self));
  }
  return 0;
}

int run_server_process(const NodeCli& cli) {
  const net::NodeId self = net::server_id(cli.index);
  if (!cli.trace_dir.empty()) {
    obs::set_process_identity("server", cli.index);
    obs::set_enabled(true);
  }
  // A PS holds one fd per client (+ listener, stdio, epoll, slack). Fail
  // with an actionable line now rather than mid-accept.
  if (const std::string e = eventloop::ensure_fd_budget(cli.fed.clients + 16);
      !e.empty())
    throw std::runtime_error(e);
  const FilterPool filter_pool(cli.filter_threads);

  transport::NodeReport report;
  if (cli.runtime == "eventloop") {
    eventloop::EventLoopOptions options;
    options.payload_codec = cli.fed.upload_compression;
    auto transport = eventloop::EventLoopServer::listen(
        self, server_addresses(cli)[cli.index], options);
    report = transport::run_server_node(*transport, cli.workload, cli.fed,
                                        cli.index, cli.timeout_seconds);
    transport->flush(cli.timeout_seconds);
  } else {
    auto transport = transport::SocketTransport::listen_and_accept(
        self, server_addresses(cli)[cli.index], cli.fed.clients,
        socket_options(cli, self), cli.timeout_seconds);
    report = transport::run_server_node(*transport, cli.workload, cli.fed,
                                        cli.index, cli.timeout_seconds);
  }
  write_report(cli, report);
  if (!cli.trace_dir.empty()) {
    obs::set_enabled(false);
    obs::save_chrome_trace(trace_path(cli, self));
  }
  return 0;
}

// Re-runs the configuration on the round-synchronous simulator and checks
// bit-for-bit agreement. Returns true when everything matches.
bool verify_against_sim(const NodeCli& cli,
                        const transport::TransportRunSummary& summary) {
  std::vector<std::uint32_t> sim_crcs;
  fl::Experiment experiment = fl::make_experiment(cli.workload, cli.fed);
  experiment.run->set_round_callback(
      [&](std::uint64_t round, const std::vector<fl::LearnerPtr>& learners) {
        if (round + 1 != cli.fed.rounds) return;
        sim_crcs.clear();
        for (const auto& learner : learners)
          sim_crcs.push_back(transport::crc32c_floats(learner->parameters()));
      });
  const fl::RunResult sim = experiment.run->run();

  bool ok = true;
  const auto check = [&](bool condition, const std::string& what) {
    if (!condition) {
      std::printf("verify: MISMATCH %s\n", what.c_str());
      ok = false;
    }
  };

  const auto totals = summary.data_totals();
  check(totals.uplink_messages == sim.uplink_total.messages &&
            totals.uplink_bytes == sim.uplink_total.bytes,
        "uplink data traffic (measured " +
            std::to_string(totals.uplink_bytes) + " B / " +
            std::to_string(totals.uplink_messages) + " msgs, simulated " +
            std::to_string(sim.uplink_total.bytes) + " B / " +
            std::to_string(sim.uplink_total.messages) + " msgs)");
  check(totals.downlink_messages == sim.downlink_total.messages &&
            totals.downlink_bytes == sim.downlink_total.bytes,
        "downlink data traffic (measured " +
            std::to_string(totals.downlink_bytes) + " B, simulated " +
            std::to_string(sim.downlink_total.bytes) + " B)");

  const double sim_accuracy = *sim.final_eval().eval_accuracy;
  const double run_accuracy = summary.mean_accuracy();
  // Bit-for-bit, not approximate: same floats in the same order.
  check(run_accuracy == sim_accuracy,
        "final accuracy (measured " + std::to_string(run_accuracy) +
            ", simulated " + std::to_string(sim_accuracy) + ")");

  check(sim_crcs.size() == summary.clients.size(), "client count");
  for (std::size_t k = 0;
       k < std::min(sim_crcs.size(), summary.clients.size()); ++k)
    check(summary.clients[k].model_crc == sim_crcs[k],
          "client " + std::to_string(k) + " model CRC");

  std::printf("verify: %s\n", ok ? "OK (bit-for-bit match with simulator)"
                                 : "FAILED");
  return ok;
}

void print_summary(const NodeCli& cli,
                   const transport::TransportRunSummary& summary) {
  const auto totals = summary.data_totals();
  std::printf("# fedms_node — %s\n", cli.fed.to_string().c_str());
  std::printf("final accuracy %.4f  eval loss %.4f\n",
              summary.mean_accuracy(), summary.mean_eval_loss());
  std::printf(
      "data traffic: uplink %llu B (%llu msgs), downlink %llu B (%llu "
      "msgs), corrupt frames %llu\n",
      static_cast<unsigned long long>(totals.uplink_bytes),
      static_cast<unsigned long long>(totals.uplink_messages),
      static_cast<unsigned long long>(totals.downlink_bytes),
      static_cast<unsigned long long>(totals.downlink_messages),
      static_cast<unsigned long long>(summary.corrupt_frames()));
  std::printf("link,role,index,peer_role,peer_index,data_msgs,data_bytes,"
              "control_msgs,control_bytes,corrupt_frames\n");
  const auto print_links = [](const transport::NodeReport& node) {
    const char* role =
        node.self.kind == net::NodeKind::kClient ? "client" : "server";
    for (const auto& [peer, link] : node.stats.sent) {
      const char* peer_role =
          peer.kind == net::NodeKind::kClient ? "client" : "server";
      std::printf("sent,%s,%zu,%s,%zu,%llu,%llu,%llu,%llu,%llu\n", role,
                  node.self.index, peer_role, peer.index,
                  static_cast<unsigned long long>(link.messages),
                  static_cast<unsigned long long>(link.bytes),
                  static_cast<unsigned long long>(link.control_messages),
                  static_cast<unsigned long long>(link.control_bytes),
                  static_cast<unsigned long long>(link.corrupt_frames));
    }
  };
  for (const auto& node : summary.clients) print_links(node);
  for (const auto& node : summary.servers) print_links(node);
}

int run_inmem(const NodeCli& cli) {
  if (!cli.trace_dir.empty()) {
    ensure_dir(cli.trace_dir);
    obs::set_process_identity("proc", 0);
    obs::set_enabled(true);
  }
  transport::InMemoryHub hub(cli.fed.upload_compression);
  if (cli.corrupt_rate > 0.0)
    hub.set_corrupt_rate(cli.corrupt_rate, cli.corrupt_seed);
  const transport::TransportRunSummary summary =
      transport::run_transport_experiment(cli.workload, cli.fed, hub,
                                          cli.timeout_seconds);
  if (!cli.trace_dir.empty()) {
    // Node threads are joined inside run_transport_experiment, so the
    // registry is quiescent; every node shows up as a labeled thread row.
    obs::set_enabled(false);
    const std::string path = cli.trace_dir + "/inmem.trace.json";
    obs::save_chrome_trace(path);
    std::printf("trace: %s\n", path.c_str());
  }
  print_summary(cli, summary);
  if (cli.verify && !verify_against_sim(cli, summary)) return 1;
  return 0;
}

std::vector<std::string> child_args(const NodeCli& cli, const char* role,
                                    std::size_t index) {
  std::vector<std::string> args = {
      "/proc/self/exe",
      "--mode", role,
      "--index", std::to_string(index),
      "--backend", cli.backend,
      "--runtime", cli.runtime,
      "--rounding-mode", cli.rounding_mode,
      "--filter-threads", std::to_string(cli.filter_threads),
      "--socket-dir", cli.socket_dir,
      "--report-dir", cli.report_dir,
      "--tcp-port-base", std::to_string(cli.tcp_port_base),
      "--timeout", exact_double(cli.timeout_seconds),
      "--corrupt-rate", exact_double(cli.corrupt_rate),
      "--corrupt-seed", std::to_string(cli.corrupt_seed),
      "--clients", std::to_string(cli.fed.clients),
      "--servers", std::to_string(cli.fed.servers),
      "--byzantine", std::to_string(cli.fed.byzantine),
      "--byzantine-placement", cli.fed.byzantine_placement,
      "--rounds", std::to_string(cli.fed.rounds),
      "--local-iters", std::to_string(cli.fed.local_iterations),
      "--upload", cli.fed.upload,
      "--client-filter", cli.fed.client_filter,
      "--fedgreed-root", std::to_string(cli.fed.fedgreed_root_samples),
      "--server-aggregator", cli.fed.server_aggregator,
      "--attack", cli.fed.attack,
      "--compression", cli.fed.upload_compression,
      "--wire-encoding", cli.fed.wire_encoding,
      "--seed", std::to_string(cli.fed.seed),
      "--eval-every", std::to_string(cli.fed.eval_every),
      "--participation", exact_double(cli.fed.participation),
      "--participation-strategy", cli.fed.participation_strategy,
      "--samples", std::to_string(cli.workload.samples),
      "--alpha", exact_double(cli.workload.dirichlet_alpha),
      "--model", cli.workload.model,
      "--lr", exact_double(cli.workload.learning_rate),
      "--batch", std::to_string(cli.workload.batch_size),
  };
  if (!cli.trace_dir.empty()) {
    args.push_back("--trace-dir");
    args.push_back(cli.trace_dir);
  }
  return args;
}

pid_t spawn_child(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    ::execv("/proc/self/exe", argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

int run_launch(NodeCli cli) {
  // One scratch dir holds both sockets and report files. Unix socket paths
  // are length-limited (~108 chars), so the default lives in /tmp.
  char scratch[] = "/tmp/fedmsXXXXXX";
  if (cli.socket_dir.empty()) {
    if (::mkdtemp(scratch) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    cli.socket_dir = scratch;
  }
  if (cli.report_dir.empty()) cli.report_dir = cli.socket_dir;
  if (!cli.trace_dir.empty()) ensure_dir(cli.trace_dir);

  std::vector<pid_t> pids;
  // Servers first (they bind and listen); clients retry connects with
  // backoff, so strict ordering is a courtesy, not a requirement.
  for (std::size_t p = 0; p < cli.fed.servers; ++p)
    pids.push_back(spawn_child(child_args(cli, "server", p)));
  for (std::size_t k = 0; k < cli.fed.clients; ++k)
    pids.push_back(spawn_child(child_args(cli, "client", k)));

  bool failed = false;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "node process %d failed (status %d)\n", int(pid),
                   status);
      failed = true;
    }
  }
  if (failed) return 1;

  transport::TransportRunSummary summary;
  for (std::size_t k = 0; k < cli.fed.clients; ++k)
    summary.clients.push_back(read_report(cli, net::client_id(k)));
  for (std::size_t p = 0; p < cli.fed.servers; ++p)
    summary.servers.push_back(read_report(cli, net::server_id(p)));

  print_summary(cli, summary);

  if (!cli.trace_dir.empty()) {
    // Merge the per-process trace files into one timeline. All nodes ran
    // on this host, so CLOCK_MONOTONIC timestamps already agree.
    std::vector<std::string> inputs;
    for (std::size_t p = 0; p < cli.fed.servers; ++p)
      inputs.push_back(trace_path(cli, net::server_id(p)));
    for (std::size_t k = 0; k < cli.fed.clients; ++k)
      inputs.push_back(trace_path(cli, net::client_id(k)));
    const std::string merged_path = cli.trace_dir + "/merged.trace.json";
    const obs::MergeSummary merged =
        obs::merge_chrome_traces(inputs, merged_path);
    std::printf("trace: merged %zu files, %zu events, %zu stage envelopes, "
                "stage order %s -> %s\n",
                merged.files, merged.events, merged.stages.size(),
                merged.stage_order_consistent ? "consistent" : "INCONSISTENT",
                merged_path.c_str());
    if (!merged.stage_order_consistent) return 1;
  }

  if (cli.verify && !verify_against_sim(cli, summary)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::CliFlags flags(
      "fedms_node: Fed-MS over real transports — single node roles and a "
      "multi-process localhost launcher");
  flags.add_string("mode", "inmem", "inmem | launch | client | server");
  flags.add_int("index", 0, "node index (client/server modes)");
  flags.add_string("backend", "unix", "socket backend: unix | tcp");
  flags.add_string("runtime", "blocking",
                   "PS runtime: blocking (one blocking transport) | "
                   "eventloop (epoll reactor multiplexing all clients)");
  flags.add_string("rounding-mode", "",
                   "pin the fenv rounding mode for this process (and every "
                   "forked node): nearest | upward | downward | towardzero "
                   "(default: leave the ambient mode)");
  flags.add_int("filter-threads", 0,
                "shard trimmed-mean/mean aggregation across this many "
                "threads (0 = serial; output is bit-identical either way)");
  flags.add_string("socket-dir", "",
                   "directory for Unix socket files (launch default: a "
                   "fresh /tmp/fedmsXXXXXX)");
  flags.add_string("report-dir", "",
                   "directory for per-node report files (default: "
                   "socket-dir)");
  flags.add_string("trace-dir", "",
                   "write Chrome trace_event JSON here: one "
                   "<role><index>.trace.json per node, plus "
                   "merged.trace.json (launch) or inmem.trace.json (inmem)");
  flags.add_int("tcp-port-base", 47700, "tcp: PS p listens on base+p");
  flags.add_double("timeout", 120.0,
                   "per-stage receive/accept timeout in seconds");
  flags.add_double("corrupt-rate", 0.0,
                   "probability a sent data frame is corrupted in transit");
  flags.add_int("corrupt-seed", 0, "corruption stream seed");
  flags.add_bool("verify", false,
                 "launch/inmem: re-run on the in-process simulator and "
                 "require bit-for-bit agreement");
  // Experiment knobs (the transport-supported subset of fedms_sim's).
  flags.add_int("clients", 4, "number of end clients K");
  flags.add_int("servers", 2, "number of edge parameter servers P");
  flags.add_int("byzantine", 1, "number of Byzantine PSs B");
  flags.add_string("byzantine-placement", "first", "first | random");
  flags.add_int("rounds", 2, "global training rounds T");
  flags.add_int("local-iters", 3, "local SGD iterations per round E");
  flags.add_string("upload", "sparse", "sparse | full | multi:<m>");
  flags.add_string("client-filter", "trmean:0.2",
                   "client-side defense Def()");
  flags.add_int("fedgreed-root", 64,
                "fedgreed: held-out test samples in the root batch");
  flags.add_string("server-aggregator", "mean", "PS-side aggregation rule");
  flags.add_string("attack", "noise", "Byzantine PS behaviour");
  flags.add_string("compression", "none", "upload codec: none | fp16 | int8");
  flags.add_string("wire-encoding", "f32",
                   "negotiated wire encoding: f32 | fp16 | int8 | "
                   "delta+<base> | topk:<frac>");
  flags.add_int("samples", 600, "synthetic dataset size");
  flags.add_double("alpha", 10.0, "Dirichlet D_alpha heterogeneity");
  flags.add_string("model", "mlp", "client model: mlp | logistic | ...");
  flags.add_double("lr", 0.3, "client learning rate");
  flags.add_int("batch", 32, "mini-batch size");
  flags.add_int("seed", 1, "root seed");
  flags.add_int("eval-every", 1, "evaluate every N rounds");
  flags.add_double("participation", 1.0,
                   "fraction of clients active per round (uniform draws "
                   "replayed per node from the shared seed)");
  flags.add_string("participation-strategy", "uniform",
                   "uniform (highloss needs the simulator)");
  if (!flags.parse(argc, argv)) return 1;

  NodeCli cli;
  cli.mode = flags.get_string("mode");
  cli.index = std::size_t(flags.get_int("index"));
  cli.backend = flags.get_string("backend");
  cli.runtime = flags.get_string("runtime");
  cli.rounding_mode = flags.get_string("rounding-mode");
  cli.filter_threads = std::size_t(flags.get_int("filter-threads"));
  cli.socket_dir = flags.get_string("socket-dir");
  cli.report_dir = flags.get_string("report-dir");
  cli.trace_dir = flags.get_string("trace-dir");
  cli.tcp_port_base = int(flags.get_int("tcp-port-base"));
  cli.timeout_seconds = flags.get_double("timeout");
  cli.corrupt_rate = flags.get_double("corrupt-rate");
  cli.corrupt_seed = std::uint64_t(flags.get_int("corrupt-seed"));
  cli.verify = flags.get_bool("verify");

  cli.fed.clients = std::size_t(flags.get_int("clients"));
  cli.fed.servers = std::size_t(flags.get_int("servers"));
  cli.fed.byzantine = std::size_t(flags.get_int("byzantine"));
  cli.fed.byzantine_placement = flags.get_string("byzantine-placement");
  cli.fed.rounds = std::size_t(flags.get_int("rounds"));
  cli.fed.local_iterations = std::size_t(flags.get_int("local-iters"));
  cli.fed.upload = flags.get_string("upload");
  cli.fed.client_filter = flags.get_string("client-filter");
  cli.fed.fedgreed_root_samples =
      std::size_t(flags.get_int("fedgreed-root"));
  cli.fed.server_aggregator = flags.get_string("server-aggregator");
  cli.fed.attack = flags.get_string("attack");
  cli.fed.upload_compression = flags.get_string("compression");
  cli.fed.wire_encoding = flags.get_string("wire-encoding");
  cli.fed.seed = std::uint64_t(flags.get_int("seed"));
  cli.fed.eval_every = std::size_t(flags.get_int("eval-every"));
  cli.fed.participation = flags.get_double("participation");
  cli.fed.participation_strategy = flags.get_string("participation-strategy");

  cli.workload.samples = std::size_t(flags.get_int("samples"));
  cli.workload.dirichlet_alpha = flags.get_double("alpha");
  cli.workload.model = flags.get_string("model");
  cli.workload.learning_rate = flags.get_double("lr");
  cli.workload.batch_size = std::size_t(flags.get_int("batch"));

  try {
    // Bad flag values are user input: throw (caught below as one-line
    // errors) instead of letting validate()'s contracts abort.
    if (const std::string e = cli.fed.check(); !e.empty())
      throw std::runtime_error(e);
    if (const std::string e = fl::check_aggregator_spec(cli.fed.client_filter);
        !e.empty())
      throw std::runtime_error("--client-filter: " + e);
    if (const std::string e =
            fl::check_aggregator_spec(cli.fed.server_aggregator);
        !e.empty())
      throw std::runtime_error("--server-aggregator: " + e);
    if (const std::string e = fl::check_upload_spec(cli.fed.upload);
        !e.empty())
      throw std::runtime_error("--upload: " + e);
    if (const std::string e = byz::check_attack_name(cli.fed.attack);
        !e.empty())
      throw std::runtime_error("--attack: " + e);
    transport::check_transport_supported(cli.fed);
    if (cli.backend != "unix" && cli.backend != "tcp")
      throw std::runtime_error("--backend must be unix or tcp");
    if (cli.runtime != "blocking" && cli.runtime != "eventloop")
      throw std::runtime_error("--runtime must be blocking or eventloop");
    if (const std::string e =
            core::check_rounding_mode_spec(cli.rounding_mode);
        !e.empty())
      throw std::runtime_error("--rounding-mode: " + e);
    if (!cli.rounding_mode.empty()) {
      // Installed before any node thread exists, so every thread (and,
      // via child_args, every forked node process) inherits the mode.
      int fenv_mode = FE_TONEAREST;
      FEDMS_EXPECTS(
          core::parse_rounding_mode(cli.rounding_mode, &fenv_mode));
      std::fesetround(fenv_mode);
    }
    if (cli.runtime == "eventloop" && cli.mode == "inmem")
      throw std::runtime_error(
          "--runtime eventloop needs real sockets (use --mode launch, "
          "client, or server)");
    if (cli.runtime == "eventloop" && cli.corrupt_rate > 0.0)
      throw std::runtime_error(
          "--runtime eventloop does not inject transit corruption; use "
          "the blocking runtime with --corrupt-rate");
    if (cli.verify && cli.corrupt_rate > 0.0)
      throw std::runtime_error(
          "--verify requires --corrupt-rate 0 (corruption changes the "
          "result by design)");
    {
      fl::WireEncodingSpec wire_spec;
      FEDMS_EXPECTS(
          fl::parse_wire_encoding(cli.fed.wire_encoding, &wire_spec)
              .empty());  // fed.check() already validated the spec
      if (wire_spec.stateful() && cli.corrupt_rate > 0.0)
        throw std::runtime_error(
            "--corrupt-rate with stateful --wire-encoding \"" +
            cli.fed.wire_encoding +
            "\" would desynchronize delta/top-k streams (a dropped frame "
            "breaks the reference chain); use f32/fp16/int8");
    }
    if (cli.mode == "client" || cli.mode == "server") {
      if (cli.backend == "unix" && cli.socket_dir.empty())
        throw std::runtime_error("--socket-dir is required with unix sockets");
      if (cli.report_dir.empty())
        throw std::runtime_error("--report-dir is required for node roles");
    }
    if (cli.mode == "inmem") return run_inmem(cli);
    if (cli.mode == "launch") return run_launch(cli);
    if (cli.mode == "client") return run_client_process(cli);
    if (cli.mode == "server") return run_server_process(cli);
    throw std::runtime_error("--mode must be inmem|launch|client|server");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fedms_node: %s\n", error.what());
    return 1;
  }
}
