// Full (defense x attack) evaluation-matrix runner.
//
// Expands every (defense x attack x seed) cell over one base scenario,
// packs the cells across core::ThreadPool (each cell's training runs
// through the thread-local workspace-arena path, so concurrent cells
// never share mutable state), writes one deterministic JSON result per
// cell, and aggregates the final accuracies into a single
// accuracy-surface artifact. Every cell is a pure function of
// (scenario, defense, attack, seed) — the per-cell files AND the surface
// bytes are identical for any --jobs value, which check.sh asserts
// against a committed golden.
//
//   fedms_matrix --seeds 2 --jobs 4 --out-dir matrix-out
//   fedms_matrix --scenario examples/churn.json --seeds 4
//   fedms_matrix --defenses mean,adaptive --attacks signflip,nan
//
// Defaults: the defense axis is fl::default_defense_zoo(P, B) for the
// scenario's topology, the attack axis is byz::list_attack_names(), and
// the base scenario is a built-in 2-round micro workload sized so the
// full zoo-x-zoo matrix stays CI-friendly.

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "byz/attack.h"
#include "core/cli.h"
#include "core/rounding.h"
#include "core/thread_pool.h"
#include "fl/aggregators.h"
#include "scenario/engine.h"
#include "scenario/scenario.h"
#include "testing/json_min.h"

namespace {

using namespace fedms;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "fedms_matrix: error: %s\n", message.c_str());
  std::exit(1);
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
    die("cannot create directory " + path);
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

// Defense specs contain ':' (trmean:0.2); keep file names shell-safe.
std::string sanitize(const std::string& text) {
  std::string out = text;
  for (char& c : out)
    if (c == ':' || c == '/' || c == ' ') c = '_';
  return out;
}

// The built-in base scenario: small enough that the full
// (defense zoo x attack zoo x seeds) product runs in CI, large enough
// that defenses separate (P = 7 with B = 1 keeps every zoo member
// admissible, including bulyan's P >= 4B + 3).
scenario::Scenario micro_scenario() {
  scenario::Scenario scen;
  scen.name = "matrix-micro";
  scen.fed.clients = 4;
  scen.fed.servers = 7;
  scen.fed.byzantine = 1;
  scen.fed.rounds = 2;
  scen.fed.local_iterations = 2;
  // Full upload: every PS aggregates every client, so each cell's filter
  // sees all P candidates and the defense axis is exercised at full width.
  scen.fed.upload = "full";
  scen.fed.eval_every = 1;
  scen.workload.samples = 160;
  scen.workload.feature_dimension = 16;
  scen.workload.model = "logistic";
  scen.workload.batch_size = 16;
  scen.workload.eval_sample_cap = 0;  // evaluate the whole (tiny) test set
  return scen;
}

struct Cell {
  std::size_t scenario_index = 0;  // into the per-attack scenario variants
  std::size_t defense_index = 0;
  std::size_t attack_index = 0;
  std::uint64_t seed = 0;
  std::string path;  // per-cell output JSON file
};

struct CellResult {
  double accuracy = 0.0;
  std::uint64_t trace_hash = 0;
};

}  // namespace

int main(int argc, char** argv) {
  core::CliFlags flags(
      "Full (defense x attack x seed) evaluation matrix: one deterministic "
      "JSON result per cell plus an aggregated accuracy-surface artifact.");
  flags.add_string("scenario", "",
                   "base scenario JSON file (default: built-in micro "
                   "scenario)");
  flags.add_string("defenses", "",
                   "comma-separated client-filter specs (default: "
                   "default_defense_zoo(P, B) for the scenario topology)");
  flags.add_string("attacks", "",
                   "comma-separated attack names (default: every attack "
                   "in byz::list_attack_names())");
  flags.add_int("seeds", 2, "number of seeds (cells use seeds 1..N)");
  flags.add_int("jobs", 1, "concurrent cells (1 = sequential)");
  flags.add_string("out-dir", "matrix-out", "output directory");
  flags.add_string("surface", "",
                   "accuracy-surface output path (default: "
                   "<out-dir>/surface.json)");
  if (!flags.parse(argc, argv)) return 1;

  const std::int64_t seeds = flags.get_int("seeds");
  if (seeds < 1) die("--seeds must be >= 1");
  const std::int64_t jobs = flags.get_int("jobs");
  if (jobs < 1) die("--jobs must be >= 1");
  const std::string out_dir = flags.get_string("out-dir");

  scenario::Scenario base;
  const std::string scenario_path = flags.get_string("scenario");
  if (scenario_path.empty()) {
    base = micro_scenario();
  } else {
    try {
      base = scenario::Scenario::load(scenario_path);
    } catch (const std::runtime_error& error) {
      die(error.what());
    }
  }

  std::vector<std::string> defenses = split_list(flags.get_string("defenses"));
  if (defenses.empty())
    defenses = fl::default_defense_zoo(base.fed.servers, base.fed.byzantine);
  for (const std::string& defense : defenses)
    if (const std::string error = fl::check_aggregator_spec(defense);
        !error.empty())
      die("defense \"" + defense + "\": " + error);

  std::vector<std::string> attacks = split_list(flags.get_string("attacks"));
  if (attacks.empty()) attacks = byz::list_attack_names();
  for (const std::string& attack : attacks)
    if (const std::string error = byz::check_attack_name(attack);
        !error.empty())
      die("attack \"" + attack + "\": " + error);

  ensure_dir(out_dir);
  const std::string surface_path = flags.get_string("surface").empty()
                                       ? out_dir + "/surface.json"
                                       : flags.get_string("surface");

  // One scenario variant per attack: run_scenario's defense override
  // handles the defense axis, the attack axis is baked into the variant.
  std::vector<scenario::Scenario> variants;
  variants.reserve(attacks.size());
  for (const std::string& attack : attacks) {
    scenario::Scenario variant = base;
    variant.fed.attack = attack;
    if (const std::string error = variant.check(); !error.empty())
      die("scenario with attack \"" + attack + "\": " + error);
    variants.push_back(std::move(variant));
  }

  // Grid expansion in fixed (defense, attack, seed) order; the surface
  // and every cell file are independent of execution order.
  std::vector<Cell> cells;
  for (std::size_t d = 0; d < defenses.size(); ++d)
    for (std::size_t a = 0; a < attacks.size(); ++a)
      for (std::int64_t s = 1; s <= seeds; ++s) {
        Cell cell;
        cell.scenario_index = a;
        cell.defense_index = d;
        cell.attack_index = a;
        cell.seed = static_cast<std::uint64_t>(s);
        cell.path = out_dir + "/" + sanitize(defenses[d]) + "-" +
                    sanitize(attacks[a]) + "-s" + std::to_string(s) + ".json";
        cells.push_back(std::move(cell));
      }

  std::vector<CellResult> results(cells.size());
  const auto run_cell = [&](std::size_t i) {
    const Cell& cell = cells[i];
    const scenario::ScenarioOutcome outcome = scenario::run_scenario(
        variants[cell.scenario_index], cell.seed, defenses[cell.defense_index]);
    const runtime::AsyncRoundRecord& last = outcome.result.final_eval();
    results[i].accuracy = *last.base.eval_accuracy;
    results[i].trace_hash = outcome.result.trace_hash;
    std::ofstream out(cell.path);
    if (!out) throw std::runtime_error("cannot write " + cell.path);
    out << outcome.to_json();
  };
  try {
    // jobs == 1 degrades ThreadPool to inline execution — the reference
    // ordering the bit-equality contract is stated against.
    core::ThreadPool pool(jobs == 1 ? 0 : static_cast<std::size_t>(jobs));
    pool.parallel_for(cells.size(), run_cell);
  } catch (const std::runtime_error& error) {
    die(error.what());
  }

  // Assemble the accuracy surface in the fixed cell order. All FP
  // arithmetic and formatting that feeds the artifact runs under a pinned
  // FE_TONEAREST so the bytes are independent of the ambient rounding
  // mode (the mode-proof text contract; cell accuracies themselves are
  // whatever the runs produced).
  const core::ScopedRoundingMode nearest(FE_TONEAREST);
  std::ostringstream os;
  const auto fmt = [](double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6f", value);
    return std::string(buffer);
  };
  os << "{\n  \"scenario\": \"" << testing::json_escape(base.name)
     << "\",\n  \"seeds\": " << seeds << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char hash_hex[32];
    std::snprintf(hash_hex, sizeof hash_hex, "0x%llx",
                  static_cast<unsigned long long>(results[i].trace_hash));
    os << "    {\"defense\": \""
       << testing::json_escape(defenses[cells[i].defense_index])
       << "\", \"attack\": \""
       << testing::json_escape(attacks[cells[i].attack_index])
       << "\", \"seed\": " << cells[i].seed << ", \"accuracy\": "
       << fmt(results[i].accuracy) << ", \"trace_hash\": \"" << hash_hex
       << "\"}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"surface\": [\n";
  for (std::size_t d = 0; d < defenses.size(); ++d)
    for (std::size_t a = 0; a < attacks.size(); ++a) {
      const std::size_t first = (d * attacks.size() + a) *
                                static_cast<std::size_t>(seeds);
      double sum = 0.0;
      double lo = results[first].accuracy;
      double hi = results[first].accuracy;
      for (std::int64_t s = 0; s < seeds; ++s) {
        const double accuracy = results[first + std::size_t(s)].accuracy;
        sum += accuracy;
        lo = std::fmin(lo, accuracy);
        hi = std::fmax(hi, accuracy);
      }
      os << "    {\"defense\": \"" << testing::json_escape(defenses[d])
         << "\", \"attack\": \"" << testing::json_escape(attacks[a])
         << "\", \"mean\": " << fmt(sum / double(seeds)) << ", \"min\": "
         << fmt(lo) << ", \"max\": " << fmt(hi) << "}"
         << (d + 1 < defenses.size() || a + 1 < attacks.size() ? "," : "")
         << "\n";
    }
  os << "  ]\n}\n";
  std::ofstream surface(surface_path);
  if (!surface) die("cannot write " + surface_path);
  surface << os.str();

  std::printf("wrote %zu cells to %s and the accuracy surface to %s "
              "(%zu defense%s x %zu attack%s x %lld seed%s)\n",
              cells.size(), out_dir.c_str(), surface_path.c_str(),
              defenses.size(), defenses.size() == 1 ? "" : "s",
              attacks.size(), attacks.size() == 1 ? "" : "s",
              static_cast<long long>(seeds), seeds == 1 ? "" : "s");
  return 0;
}
