// Batched multi-seed scenario sweep runner.
//
// Expands a grid of (scenario files × defenses × seeds) into independent
// cells, packs them across core::ThreadPool (each cell's training runs
// through the thread-local workspace-arena path, so concurrent cells
// never share mutable state), and writes one deterministic JSON result
// per cell. Every cell is a pure function of (scenario, defense, seed) —
// the output bytes are identical for any --jobs value, which check.sh
// asserts.
//
//   fedms_sweep --scenario examples/churn.json --seeds 8 --jobs 4 \
//               --defenses trmean:0.2,mean --out-dir sweep-out
//
// --trace-dir enables obs tracing; the obs registry is process-global,
// so tracing forces serial cell execution and the per-cell traces are
// merged round-keyed into <trace-dir>/merged.trace.json.

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/thread_pool.h"
#include "fl/aggregators.h"
#include "obs/obs.h"
#include "obs/trace_merge.h"
#include "scenario/engine.h"
#include "scenario/scenario.h"

namespace {

using namespace fedms;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "fedms_sweep: error: %s\n", message.c_str());
  std::exit(1);
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
    die("cannot create directory " + path);
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

// Defense specs contain ':' (trmean:0.2); keep file names shell-safe.
std::string sanitize(const std::string& text) {
  std::string out = text;
  for (char& c : out)
    if (c == ':' || c == '/' || c == ' ') c = '_';
  return out;
}

struct Cell {
  const scenario::Scenario* scenario = nullptr;
  std::string defense;  // empty = the scenario's own
  std::uint64_t seed = 0;
  std::string path;     // output JSON file
};

}  // namespace

int main(int argc, char** argv) {
  core::CliFlags flags(
      "Batched multi-seed scenario sweep: expands (scenarios x defenses x "
      "seeds) and writes one deterministic JSON result per cell.");
  flags.add_string("scenario", "",
                   "comma-separated scenario JSON files (required)");
  flags.add_int("seeds", 4, "number of seeds (cells use seeds 1..N)");
  flags.add_string("defenses", "",
                   "comma-separated client-filter specs (default: each "
                   "scenario's own defense)");
  flags.add_int("jobs", 1, "concurrent cells (1 = sequential)");
  flags.add_string("out-dir", "sweep-out", "output directory");
  flags.add_string("trace-dir", "",
                   "write obs traces here (forces --jobs 1)");
  if (!flags.parse(argc, argv)) return 1;

  const std::string scenario_list = flags.get_string("scenario");
  if (scenario_list.empty()) die("--scenario is required");
  const std::int64_t seeds = flags.get_int("seeds");
  if (seeds < 1) die("--seeds must be >= 1");
  std::int64_t jobs = flags.get_int("jobs");
  if (jobs < 1) die("--jobs must be >= 1");
  const std::string out_dir = flags.get_string("out-dir");
  const std::string trace_dir = flags.get_string("trace-dir");
  const bool tracing = !trace_dir.empty();
  if (tracing && jobs != 1) {
    // The obs registry is process-global: concurrent cells would
    // interleave their spans. Tracing runs are serial by construction.
    std::fprintf(stderr,
                 "fedms_sweep: tracing is process-global; forcing --jobs 1\n");
    jobs = 1;
  }

  std::vector<scenario::Scenario> scenarios;
  for (const std::string& path : split_list(scenario_list)) {
    try {
      scenarios.push_back(scenario::Scenario::load(path));
    } catch (const std::runtime_error& error) {
      die(error.what());
    }
  }
  const std::vector<std::string> defenses = split_list(
      flags.get_string("defenses"));
  for (const std::string& defense : defenses)
    if (const std::string error = fl::check_aggregator_spec(defense);
        !error.empty())
      die("defense \"" + defense + "\": " + error);

  ensure_dir(out_dir);
  if (tracing) ensure_dir(trace_dir);

  // Grid expansion in fixed (scenario, defense, seed) order; each cell's
  // output file name and bytes are independent of execution order.
  std::vector<Cell> cells;
  for (const scenario::Scenario& scen : scenarios) {
    std::vector<std::string> cell_defenses = defenses;
    if (cell_defenses.empty()) cell_defenses.push_back("");
    for (const std::string& defense : cell_defenses)
      for (std::int64_t s = 1; s <= seeds; ++s) {
        Cell cell;
        cell.scenario = &scen;
        cell.defense = defense;
        cell.seed = static_cast<std::uint64_t>(s);
        const std::string defense_tag =
            sanitize(defense.empty() ? scen.fed.client_filter : defense);
        cell.path = out_dir + "/" + sanitize(scen.name) + "-" +
                    defense_tag + "-s" + std::to_string(s) + ".json";
        cells.push_back(std::move(cell));
      }
  }

  std::vector<std::string> trace_files;
  const auto run_cell = [&](std::size_t i) {
    const Cell& cell = cells[i];
    const scenario::ScenarioOutcome outcome =
        scenario::run_scenario(*cell.scenario, cell.seed, cell.defense);
    std::ofstream out(cell.path);
    if (!out) throw std::runtime_error("cannot write " + cell.path);
    out << outcome.to_json();
  };
  try {
    if (tracing) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        obs::reset();
        obs::set_enabled(true);
        run_cell(i);
        obs::set_enabled(false);
        const std::string trace_path =
            trace_dir + "/cell" + std::to_string(i) + ".trace.json";
        obs::save_chrome_trace(trace_path);
        trace_files.push_back(trace_path);
      }
      const obs::MergeSummary summary = obs::merge_chrome_traces(
          trace_files, trace_dir + "/merged.trace.json");
      if (!summary.stage_order_consistent)
        die("merged traces violate the canonical stage order");
      std::printf("merged %zu traces (%zu events) into %s\n",
                  summary.files, summary.events,
                  (trace_dir + "/merged.trace.json").c_str());
    } else {
      // jobs == 1 degrades ThreadPool to inline execution — the
      // reference ordering the bit-equality contract is stated against.
      core::ThreadPool pool(jobs == 1 ? 0
                                      : static_cast<std::size_t>(jobs));
      pool.parallel_for(cells.size(), run_cell);
    }
  } catch (const std::runtime_error& error) {
    die(error.what());
  }

  std::printf("wrote %zu results to %s (%zu scenario%s x %zu defense%s x "
              "%lld seeds)\n",
              cells.size(), out_dir.c_str(), scenarios.size(),
              scenarios.size() == 1 ? "" : "s",
              defenses.empty() ? std::size_t{1} : defenses.size(),
              defenses.size() == 1 ? "" : "s",
              static_cast<long long>(seeds));
  return 0;
}
