// fedms_trace_merge — combine per-node Chrome trace files into one
// timeline.
//
// fedms_node child processes each write <role><index>.trace.json; this
// tool concatenates them onto a shared (rebased) timebase, appends
// per-(round, stage) envelope spans on a synthetic "timeline" row, and
// verifies that every node saw the canonical Fed-MS stage order.
//
//   ./build/tools/fedms_trace_merge --out merged.trace.json \
//       /tmp/traces/server0.trace.json /tmp/traces/client*.trace.json
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace_merge.h"

int main(int argc, char** argv) {
  std::string out = "merged.trace.json";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: fedms_trace_merge [--out merged.trace.json] "
          "<trace.json>...\n");
      return 0;
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "fedms_trace_merge: no input trace files (--help for "
                 "usage)\n");
    return 1;
  }
  try {
    const fedms::obs::MergeSummary summary =
        fedms::obs::merge_chrome_traces(inputs, out);
    std::printf("merged %zu files, %zu events -> %s\n", summary.files,
                summary.events, out.c_str());
    std::printf("round,stage,start_us,end_us,nodes\n");
    for (const auto& stage : summary.stages)
      std::printf("%llu,%s,%.3f,%.3f,%zu\n",
                  static_cast<unsigned long long>(stage.round),
                  stage.stage.c_str(), stage.start_us, stage.end_us,
                  stage.nodes);
    std::printf("stage order: %s\n", summary.stage_order_consistent
                                         ? "consistent"
                                         : "INCONSISTENT");
    return summary.stage_order_consistent ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fedms_trace_merge: %s\n", error.what());
    return 1;
  }
}
