// fedms_sim — the full-surface command-line simulator.
//
// Exposes every knob of the Fed-MS stack (topology, attacks on both sides,
// defenses on both sides, upload strategy, compression, participation,
// network loss, data heterogeneity, model choice) and prints one CSV row
// per evaluated round, plus a run summary. With --repeats N it re-runs the
// experiment under derived seeds and reports mean ± stddev of the final
// accuracy — the entry point for scripting custom sweeps.
//
//   ./build/tools/fedms_sim --attack random --client-filter trmean:0.2 \
//       --rounds 40 --alpha 10 --csv out.csv

#include <cstdio>
#include <iostream>

#include <cfenv>

#include "byz/attack.h"
#include "core/cli.h"
#include "core/rounding.h"
#include "fl/aggregators.h"
#include "fl/experiment.h"
#include "fl/upload.h"
#include "metrics/json.h"
#include "obs/obs.h"
#include "metrics/recorder.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "runtime/async_fedms.h"
#include "runtime/telemetry.h"

int main(int argc, char** argv) {
  using namespace fedms;
  core::CliFlags flags(
      "fedms_sim: Byzantine fault-tolerant federated edge learning "
      "simulator (Fed-MS, ICDCS 2024)");

  // Topology (paper Table II defaults).
  flags.add_int("clients", 50, "number of end clients K");
  flags.add_int("servers", 10, "number of edge parameter servers P");
  flags.add_int("byzantine", 2, "number of Byzantine PSs B (B <= P/2)");
  flags.add_string("byzantine-placement", "first",
                   "which PSs are Byzantine: first | random");
  // Protocol.
  flags.add_int("rounds", 40, "global training rounds T");
  flags.add_int("local-iters", 3, "local SGD iterations per round E");
  flags.add_string("upload", "sparse",
                   "upload strategy: sparse | full | multi:<m>");
  flags.add_string("client-filter", "trmean:0.2",
                   "client-side defense Def(): mean | trmean:<b> | median | "
                   "krum:<f> | multikrum:<f>:<m> | bulyan:<f> | geomedian | "
                   "adaptive[:<init>] | fedgreed:<k>");
  flags.add_int("fedgreed-root", 64,
                "fedgreed: held-out test samples in the root batch");
  flags.add_string("server-aggregator", "mean",
                   "PS-side aggregation rule (same specs as client-filter)");
  flags.add_string("attack", "noise",
                   "Byzantine PS behaviour: benign | noise | random | "
                   "safeguard | backward | zero | signflip | inconsistent | "
                   "collusion | nan | crash | alie | edgeoftrim");
  // Byzantine clients extension.
  flags.add_int("byzantine-clients", 0, "number of Byzantine clients");
  flags.add_string("client-attack", "benign",
                   "Byzantine client forgery: benign | signflip | scaling | "
                   "noise | zero | random");
  // Communication extensions.
  flags.add_string("compression", "none",
                   "upload payload codec: none | fp16 | int8");
  flags.add_string("wire-encoding", "f32",
                   "negotiated wire encoding: f32 | fp16 | int8 | "
                   "delta+<base> | topk:<frac>");
  flags.add_double("participation", 1.0,
                   "fraction of clients active per round");
  flags.add_double("loss-rate", 0.0, "network message loss probability");
  // Differential privacy.
  flags.add_double("dp-clip", 0.0,
                   "L2 clip norm for round updates (0 = DP off)");
  flags.add_double("dp-noise", 0.0, "Gaussian-mechanism noise multiplier");
  // Workload.
  flags.add_int("samples", 3000, "synthetic dataset size");
  flags.add_double("alpha", 10.0, "Dirichlet D_alpha heterogeneity");
  flags.add_string("model", "mlp", "client model: mlp | logistic | mobilenet");
  flags.add_double("lr", 0.3, "client learning rate");
  flags.add_string("lr-schedule", "",
                   "overrides --lr: constant:<lr> | invdecay:<phi>:<gamma> "
                   "| step:<base>:<factor>:<every>");
  flags.add_int("batch", 32, "mini-batch size");
  // Event-driven runtime + fault injection.
  flags.add_string("runtime", "sync",
                   "execution engine: sync (lock-step loop) | async "
                   "(event-driven virtual clock with fault injection)");
  flags.add_string("fault-plan", "",
                   "async-only fault spec: crash=<ps>@<round>,...;"
                   "drop=<p>;dup=<p>;omit=<p>;delay=<p>:<sec>[:<jitter>];"
                   "straggler=<client>:<factor>,...;sstraggler=<ps>:<factor>");
  flags.add_double("compute-time", 0.05,
                   "async: simulated local-training seconds per round");
  flags.add_double("upload-window", 0.25,
                   "async: PS aggregation deadline from round start (s)");
  flags.add_double("timeout", 0.25,
                   "async: client filter deadline past the PS deadline (s)");
  flags.add_int("retries", 2,
                "async: re-requests to missing PSs before falling back");
  flags.add_double("backoff", 0.1,
                   "async: initial retry backoff seconds (doubles each try)");
  // Harness.
  flags.add_int("seed", 1, "root seed");
  flags.add_int("eval-every", 2, "evaluate every N rounds");
  flags.add_int("repeats", 1, "independent repetitions (seed + 1000*i)");
  flags.add_int("workers", 0,
                "worker threads for client training (0 = inline; results "
                "are identical either way)");
  flags.add_string("rounding-mode", "",
                   "pin the fenv rounding mode for the whole run: nearest | "
                   "upward | downward | towardzero (default: leave the "
                   "ambient mode)");
  flags.add_string("csv", "", "also write per-round series to this file");
  flags.add_string("json", "",
                   "write the first repeat's full telemetry as JSON");
  flags.add_string("trace-out", "",
                   "write the first repeat's stage timeline as Chrome "
                   "trace_event JSON (load in chrome://tracing)");
  if (!flags.parse(argc, argv)) return 1;

  fl::WorkloadConfig workload;
  workload.samples = std::size_t(flags.get_int("samples"));
  workload.dirichlet_alpha = flags.get_double("alpha");
  workload.model = flags.get_string("model");
  workload.learning_rate = flags.get_double("lr");
  workload.lr_schedule = flags.get_string("lr-schedule");
  workload.batch_size = std::size_t(flags.get_int("batch"));

  fl::FedMsConfig fed;
  fed.clients = std::size_t(flags.get_int("clients"));
  fed.servers = std::size_t(flags.get_int("servers"));
  fed.byzantine = std::size_t(flags.get_int("byzantine"));
  fed.byzantine_placement = flags.get_string("byzantine-placement");
  fed.rounds = std::size_t(flags.get_int("rounds"));
  fed.local_iterations = std::size_t(flags.get_int("local-iters"));
  fed.upload = flags.get_string("upload");
  fed.client_filter = flags.get_string("client-filter");
  fed.fedgreed_root_samples = std::size_t(flags.get_int("fedgreed-root"));
  fed.server_aggregator = flags.get_string("server-aggregator");
  fed.attack = flags.get_string("attack");
  fed.byzantine_clients = std::size_t(flags.get_int("byzantine-clients"));
  fed.client_attack = flags.get_string("client-attack");
  fed.upload_compression = flags.get_string("compression");
  fed.wire_encoding = flags.get_string("wire-encoding");
  fed.participation = flags.get_double("participation");
  fed.network_loss_rate = flags.get_double("loss-rate");
  fed.dp_clip_norm = flags.get_double("dp-clip");
  fed.dp_noise_multiplier = flags.get_double("dp-noise");
  fed.worker_threads = std::size_t(flags.get_int("workers"));
  fed.seed = std::uint64_t(flags.get_int("seed"));
  fed.eval_every = std::size_t(flags.get_int("eval-every"));

  // CLI validation: a bad flag value is user input, not an internal bug —
  // report one actionable line and exit 1 instead of contract-aborting.
  const auto cli_error = [](const std::string& message) {
    std::fprintf(stderr, "fedms_sim: error: %s\n", message.c_str());
    return 1;
  };
  if (const std::string e = fed.check(); !e.empty()) return cli_error(e);
  if (const std::string e = fl::check_aggregator_spec(fed.client_filter);
      !e.empty())
    return cli_error("--client-filter: " + e);
  if (const std::string e = fl::check_aggregator_spec(fed.server_aggregator);
      !e.empty())
    return cli_error("--server-aggregator: " + e);
  if (const std::string e = fl::check_upload_spec(fed.upload); !e.empty())
    return cli_error("--upload: " + e);
  if (const std::string e = byz::check_attack_name(fed.attack); !e.empty())
    return cli_error("--attack: " + e);
  if (const std::string e =
          core::check_rounding_mode_spec(flags.get_string("rounding-mode"));
      !e.empty())
    return cli_error("--rounding-mode: " + e);
  if (!flags.get_string("rounding-mode").empty()) {
    // Installed before the worker pool exists, so every training thread
    // inherits the mode ([cfenv]: threads capture the creator's fenv).
    int fenv_mode = FE_TONEAREST;
    core::parse_rounding_mode(flags.get_string("rounding-mode"), &fenv_mode);
    std::fesetround(fenv_mode);
  }

  const std::string runtime_kind = flags.get_string("runtime");
  if (runtime_kind != "sync" && runtime_kind != "async") {
    std::fprintf(stderr, "--runtime must be sync or async (got \"%s\")\n",
                 runtime_kind.c_str());
    return 1;
  }
  const bool async = runtime_kind == "async";
  if (async && fed.wire_encoding != "f32")
    return cli_error("--wire-encoding \"" + fed.wire_encoding +
                     "\" requires --runtime sync (the event-driven engine "
                     "has no per-link wire streams)");
  runtime::RuntimeOptions runtime_options;
  runtime_options.compute_seconds = flags.get_double("compute-time");
  runtime_options.upload_window_seconds = flags.get_double("upload-window");
  runtime_options.broadcast_timeout_seconds = flags.get_double("timeout");
  runtime_options.max_retries = std::size_t(flags.get_int("retries"));
  runtime_options.retry_backoff_seconds = flags.get_double("backoff");
  {
    std::string plan_error;
    if (!runtime::FaultPlan::try_parse(flags.get_string("fault-plan"),
                                       &runtime_options.faults, &plan_error))
      return cli_error("--fault-plan: " + plan_error);
  }
  runtime_options.validate();
  if (!async && !runtime_options.faults.empty()) {
    std::fprintf(stderr, "--fault-plan requires --runtime async\n");
    return 1;
  }

  const std::size_t repeats =
      std::max<std::size_t>(1, std::size_t(flags.get_int("repeats")));

  std::printf("# fedms_sim — %s\n", fed.to_string().c_str());
  if (async && !runtime_options.faults.empty())
    std::printf("# fault plan: %s\n",
                runtime_options.faults.to_string().c_str());
  metrics::Recorder recorder;
  std::vector<double> final_accuracies;
  const std::string trace_path = flags.get_string("trace-out");
  if (!trace_path.empty()) {
    obs::set_process_identity("sim", 0);
    obs::set_enabled(true);  // disabled again after the first repeat
  }
  bool header = true;
  for (std::size_t r = 0; r < repeats; ++r) {
    fl::FedMsConfig run_fed = fed;
    run_fed.seed = fed.seed + 1000 * r;
    runtime::AsyncRunResult async_result;
    fl::RunResult result;
    if (async) {
      async_result =
          runtime::run_async_experiment(workload, run_fed, runtime_options);
      result = async_result.as_run_result();
    } else {
      result = fl::run_experiment(workload, run_fed);
    }
    const metrics::Series series = metrics::series_from_run(
        "sim", "run" + std::to_string(r), run_fed.attack, result);
    for (const auto& p : series.points) {
      if (header) {
        std::printf("figure,series,attack,round,accuracy,loss,train_loss\n");
        header = false;
      }
      std::printf("sim,run%zu,%s,%llu,%.4f,%.4f,%.4f\n", r,
                  run_fed.attack.c_str(),
                  static_cast<unsigned long long>(p.round), p.accuracy,
                  p.loss, p.train_loss);
    }
    recorder.add(series);
    final_accuracies.push_back(*result.final_eval().eval_accuracy);

    if (r == 0) {
      if (!trace_path.empty()) {
        obs::set_enabled(false);
        obs::save_chrome_trace(trace_path);
        std::printf("# trace written to %s\n", trace_path.c_str());
      }
      const std::string json_path = flags.get_string("json");
      if (!json_path.empty()) {
        if (async)
          runtime::save_async_run_json(json_path, run_fed, runtime_options,
                                       async_result);
        else
          metrics::save_run_json(json_path, run_fed, result);
        std::printf("# telemetry written to %s\n", json_path.c_str());
      }
      const double mb_up = double(result.uplink_total.bytes) / 1e6;
      const double mb_down = double(result.downlink_total.bytes) / 1e6;
      std::printf(
          "# traffic: uplink %.2f MB (%llu msgs), downlink %.2f MB "
          "(%llu msgs), simulated comm time %.2f s\n",
          mb_up,
          static_cast<unsigned long long>(result.uplink_total.messages),
          mb_down,
          static_cast<unsigned long long>(result.downlink_total.messages),
          result.simulated_comm_seconds);
      if (async) {
        std::uint64_t dropped = 0, late = 0, retries = 0, fallbacks = 0;
        for (const auto& round : async_result.rounds) {
          dropped += round.messages_dropped;
          late += round.messages_late;
          retries += round.retry_requests;
          fallbacks += round.fallbacks;
        }
        std::printf(
            "# faults: %llu dropped, %llu late, %llu retries, %llu "
            "fallbacks, virtual time %.2f s, trace hash %016llx\n",
            static_cast<unsigned long long>(dropped),
            static_cast<unsigned long long>(late),
            static_cast<unsigned long long>(retries),
            static_cast<unsigned long long>(fallbacks),
            async_result.virtual_seconds,
            static_cast<unsigned long long>(async_result.trace_hash));
      }
    }
  }

  const metrics::Summary summary = metrics::summarize(final_accuracies);
  std::printf("# final accuracy: mean %.4f  stddev %.4f  min %.4f  max "
              "%.4f  (n=%zu)\n",
              summary.mean, summary.stddev, summary.min, summary.max,
              summary.count);

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty()) {
    recorder.write_csv_file(csv_path);
    std::printf("# series written to %s\n", csv_path.c_str());
  }
  return 0;
}
