// Theory playground: the convergence machinery of Section V on a strongly
// convex quadratic problem with a closed-form optimum.
//
// Demonstrates:
//   * the Theorem-1 learning-rate schedule η_t = 2/(μ(γ+t)) and its
//     non-increasing, η_t ≤ 2η_{t+E} property;
//   * the optimality gap F(w̄_t) − F* shrinking ~1/t under Fed-MS with
//     Byzantine servers active;
//   * the Δ error constant of Theorem 1 evaluated term by term, showing
//     which error source dominates at the paper's parameters.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/convex.h"
#include "fl/fedms.h"
#include "fl/quadratic_learner.h"
#include "metrics/table.h"

int main() {
  using namespace fedms;

  data::QuadraticProblemConfig pc;
  pc.clients = 50;
  pc.dimension = 32;
  pc.mu = 1.0;
  pc.smoothness = 8.0;
  pc.heterogeneity = 0.0;  // Γ = 0: the clean Theorem-1 regime
  pc.gradient_noise = 0.5;
  core::Rng problem_rng(4242);
  const data::QuadraticProblem problem(pc, problem_rng);

  const std::size_t E = 3, P = 10, B = 2, K = pc.clients;
  const double gamma = std::max(8.0 * pc.smoothness / pc.mu, double(E));
  std::printf("Theorem-1 schedule: eta_t = 2/(mu*(gamma+t)), gamma = "
              "max(8L/mu, E) = %.0f\n", gamma);
  for (const std::uint64_t t : {0ull, 10ull, 100ull, 1000ull})
    std::printf("  eta_%-5llu = %.5f\n", (unsigned long long)t,
                2.0 / (pc.mu * (gamma + double(t))));

  // Δ term-by-term (G estimated as the gradient-norm bound near w0 = 0).
  double g_sq = 0.0;
  const std::vector<float> w0(pc.dimension, 3.0f);  // the common start w₀
  for (std::size_t k = 0; k < K; ++k) {
    const auto g = problem.local_gradient(k, w0);
    double n = 0.0;
    for (const float v : g) n += double(v) * v;
    g_sq = std::max(g_sq, n);
  }
  const double sigma_sq = pc.gradient_noise * pc.gradient_noise;
  const double term_gamma = 6.0 * pc.smoothness * problem.heterogeneity_gamma();
  const double term_drift = 8.0 * double(E * E) * g_sq;
  const double term_noise = sigma_sq;
  const double term_byz =
      4.0 * double(P) / double((P - 2 * B) * (P - 2 * B)) * double(E * E) *
      g_sq;
  const double term_sparse = (double(K - P) / double(K - 1)) * 4.0 /
                             double(P) * double(E * E) * g_sq;
  metrics::Table delta({"Delta term", "value", "source"});
  delta.add_row({"6*L*Gamma", metrics::Table::fmt(term_gamma, 3),
                 "data heterogeneity"});
  delta.add_row({"8*E^2*G^2", metrics::Table::fmt(term_drift, 3),
                 "local drift over E steps"});
  delta.add_row({"avg sigma_k^2", metrics::Table::fmt(term_noise, 3),
                 "stochastic gradients"});
  delta.add_row({"4P/(P-2B)^2*E^2*G^2", metrics::Table::fmt(term_byz, 3),
                 "Byzantine PSs (trimmed-mean error)"});
  delta.add_row({"(K-P)/(K-1)*4/P*E^2*G^2",
                 metrics::Table::fmt(term_sparse, 3),
                 "sparse-upload partial participation"});
  std::printf("\nError constant Delta of Theorem 1 (G^2 ~ %.2f near w0):\n",
              g_sq);
  delta.print(std::cout);

  // Run the actual algorithm and watch the gap fall.
  fl::FedMsConfig fed;
  fed.clients = K;
  fed.servers = P;
  fed.byzantine = B;
  fed.local_iterations = E;
  fed.rounds = 200;
  fed.attack = "random";
  fed.client_filter = "trmean:0.2";
  fed.seed = 3;
  fed.eval_every = fed.rounds;

  core::SeedSequence seeds(fed.seed);
  std::vector<fl::LearnerPtr> learners;
  for (std::size_t k = 0; k < K; ++k)
    learners.push_back(std::make_unique<fl::QuadraticLearner>(
        problem, k, E, seeds.make_rng("noise", k), /*initial_value=*/3.0f));
  fl::FedMsRun run(fed, std::move(learners));
  std::vector<double> gaps;
  run.set_round_callback([&](std::uint64_t, const auto& clients) {
    std::vector<double> mean(pc.dimension, 0.0);
    for (const auto& learner : clients) {
      const auto w = learner->parameters();
      for (std::size_t j = 0; j < w.size(); ++j) mean[j] += w[j];
    }
    std::vector<float> wbar(pc.dimension);
    for (std::size_t j = 0; j < wbar.size(); ++j)
      wbar[j] = static_cast<float>(mean[j] / double(K));
    gaps.push_back(problem.global_value(wbar) - problem.optimal_value());
  });
  run.run();

  std::printf("\nOptimality gap F(w_bar_t) - F* under Fed-MS with B=%zu "
              "Byzantine PSs (Random attack):\n", std::size_t(B));
  for (const std::size_t t : {1ul, 2ul, 5ul, 10ul, 25ul, 50ul, 100ul, 199ul})
    std::printf("  round %-4zu gap = %.3e   gap*(gamma/E+t) = %.3e\n", t,
                gaps[t], gaps[t] * (gamma / double(E) + double(t)));
  std::printf(
      "\ngap*(gamma/E+t) stabilising to a constant is the O(1/T) rate of "
      "Theorem 1.\n");
  return 0;
}
