// Quickstart: Byzantine-resilient federated learning with Fed-MS.
//
// Sets up the paper's Table-II topology (K = 50 clients, P = 10 edge
// parameter servers, 2 of them Byzantine running the Random attack),
// trains a 10-class classifier federatedly, and shows that Fed-MS's
// trimmed-mean filter keeps learning while undefended FedAvg collapses.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "fl/experiment.h"

int main() {
  using namespace fedms;

  // 1. Describe the workload: a synthetic 10-class dataset partitioned
  //    non-iid (Dirichlet α = 10) across the clients, and a small MLP.
  fl::WorkloadConfig workload;
  workload.samples = 3000;
  workload.feature_dimension = 64;
  workload.classes = 10;
  workload.dirichlet_alpha = 10.0;
  workload.model = "mlp";

  // 2. Describe the federation: Table-II scale, 20% Byzantine servers
  //    replaying the Random attack (replace the aggregate with U[-10,10]).
  fl::FedMsConfig fed;
  fed.clients = 50;
  fed.servers = 10;
  fed.byzantine = 2;
  fed.local_iterations = 3;
  fed.rounds = 15;
  fed.attack = "random";
  fed.client_filter = "trmean:0.2";  // Fed-MS defense, β = B/P
  fed.seed = 7;

  std::printf("Fed-MS quickstart — %s\n", fed.to_string().c_str());

  // 3. Run Fed-MS.
  fl::RunResult defended = fl::run_experiment(workload, fed);

  // 4. Re-run the identical federation with no defense (vanilla FedAvg
  //    averages all P received models, Byzantine ones included).
  fed.client_filter = "mean";
  fl::RunResult undefended = fl::run_experiment(workload, fed);

  std::printf("\n%-8s %-22s %-22s\n", "round", "Fed-MS accuracy",
              "Vanilla FL accuracy");
  for (std::size_t i = 0; i < defended.rounds.size(); ++i) {
    const auto& a = defended.rounds[i];
    const auto& b = undefended.rounds[i];
    if (!a.eval_accuracy) continue;
    std::printf("%-8llu %-22.4f %-22.4f\n",
                static_cast<unsigned long long>(a.round),
                *a.eval_accuracy, *b.eval_accuracy);
  }

  std::printf(
      "\nFed-MS final accuracy:   %.1f%%\n"
      "Vanilla final accuracy:  %.1f%%  (under the same Byzantine attack)\n",
      100.0 * *defended.final_eval().eval_accuracy,
      100.0 * *undefended.final_eval().eval_accuracy);
  std::printf("uplink per round: %llu messages (sparse upload ⇒ K)\n",
              static_cast<unsigned long long>(
                  defended.rounds.front().uplink_messages));
  return 0;
}
