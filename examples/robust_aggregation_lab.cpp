// Robust-aggregation laboratory: compares the client-side defense Def()
// choices — plain mean, the paper's trimmed mean, coordinate median, Krum,
// and geometric median — first on hand-crafted model vectors (to see what
// each rule actually computes), then as the filter inside a full Fed-MS
// run under a server-side attack.

#include <cstdio>
#include <iostream>

#include "fl/aggregators.h"
#include "fl/experiment.h"
#include "metrics/table.h"

namespace {

using namespace fedms;

void micro_demo() {
  std::printf("— Filter behaviour on one coordinate —\n");
  // Eight honest servers report values near 1.0; two Byzantine servers
  // report 100 (a coordinated large lie).
  std::vector<fl::ModelVector> models;
  const float honest[] = {0.9f, 0.95f, 1.0f, 1.0f, 1.02f, 1.05f, 1.1f, 1.2f};
  for (const float v : honest) models.push_back({v});
  models.push_back({100.0f});
  models.push_back({100.0f});

  metrics::Table table({"rule", "output", "comment"});
  table.add_row({"mean", metrics::Table::fmt(fl::mean_aggregate(models)[0]),
                 "dragged by the lies"});
  table.add_row({"trmean(0.2)",
                 metrics::Table::fmt(fl::trimmed_mean(models, 0.2)[0]),
                 "paper's Def(): trims 2 high + 2 low"});
  table.add_row({"trmean(0.1)",
                 metrics::Table::fmt(fl::trimmed_mean(models, 0.1)[0]),
                 "under-trimmed: one lie survives"});
  table.add_row({"median",
                 metrics::Table::fmt(fl::coordinate_median(models)[0]),
                 "robust order statistic"});
  table.add_row({"krum(f=2)", metrics::Table::fmt(fl::krum(models, 2)[0]),
                 "selects one representative model"});
  table.add_row({"geomedian",
                 metrics::Table::fmt(fl::geometric_median(models)[0]),
                 "Weiszfeld fixed point"});
  table.print(std::cout);

  std::printf("\nPaper's worked example: trmean_0.2{1,2,3,4,5} = %.0f "
              "(removes 1 and 5, averages the rest)\n\n",
              fl::trimmed_mean({{1}, {2}, {3}, {4}, {5}}, 0.2)[0]);
}

void training_comparison() {
  std::printf("— Def() choices inside a full Fed-MS run (Random attack, "
              "eps=20%%) —\n");
  fl::WorkloadConfig workload;
  workload.samples = 2000;
  fl::FedMsConfig base;
  base.clients = 30;
  base.servers = 10;
  base.byzantine = 2;
  base.attack = "random";
  base.rounds = 12;
  base.eval_every = 12;
  base.seed = 21;

  metrics::Table table({"client filter Def()", "final test accuracy"});
  const char* filters[] = {"mean", "trmean:0.2", "median", "krum:2",
                           "geomedian"};
  for (const char* filter : filters) {
    fl::FedMsConfig fed = base;
    fed.client_filter = filter;
    const fl::RunResult result = fl::run_experiment(workload, fed);
    table.add_row({filter,
                   metrics::Table::fmt(*result.final_eval().eval_accuracy,
                                       3)});
  }
  table.print(std::cout);
  std::printf(
      "\nAll robust rules survive the attack; the paper adopts the trimmed\n"
      "mean because it admits the Lemma-2 error bound P*sigma^2/(P-2B)^2\n"
      "and degenerates gracefully to the mean when B = 0.\n");
}

}  // namespace

int main() {
  micro_demo();
  training_comparison();
  return 0;
}
