// Edge deployment scenario: the paper's motivating setting — outdoor edge
// parameter servers, one of which has been compromised — with the
// MobileNet-V2-style convolutional model on image data, non-iid local
// datasets (Dirichlet α = 1), and full traffic/latency accounting from the
// simulated edge network.
//
// Shows the operational views a deployment would care about:
//   * per-round accuracy under an active Safeguard attack,
//   * per-PS upload load |N_i| (sparse uploading spreads K clients over P),
//   * uplink/downlink bytes and simulated stage latency per round.

#include <cstdio>
#include <iostream>

#include "data/dataset.h"
#include "fl/experiment.h"
#include "metrics/classification.h"
#include "metrics/table.h"

int main() {
  using namespace fedms;

  fl::WorkloadConfig workload;
  workload.model = "lenet";  // conv+pool CNN on NCHW images
  workload.samples = 600;
  workload.image_size = 8;
  workload.classes = 3;
  workload.class_separation = 5.0f;
  workload.dirichlet_alpha = 2.0;  // strongly non-iid edge data
  workload.batch_size = 16;
  workload.learning_rate = 0.15;
  workload.eval_sample_cap = 100;

  fl::FedMsConfig fed;
  fed.clients = 8;
  fed.servers = 5;
  fed.byzantine = 1;
  fed.attack = "safeguard";
  fed.client_filter = "trmean:0.2";
  fed.local_iterations = 2;
  fed.rounds = 30;
  fed.eval_every = 5;
  fed.eval_clients = 2;
  fed.seed = 11;

  std::printf("Edge deployment — LeNet-style CNN over %zu edge PSs "
              "(1 compromised, Safeguard attack)\n%s\n\n",
              fed.servers, fed.to_string().c_str());

  fl::Experiment experiment = fl::make_experiment(workload, fed);

  // Observe per-PS upload load each round.
  std::vector<std::vector<std::size_t>> loads;
  experiment.run->set_round_callback(
      [&](std::uint64_t, const std::vector<fl::LearnerPtr>&) {
        std::vector<std::size_t> row;
        for (const auto& server : experiment.run->servers())
          row.push_back(server.last_upload_count());
        loads.push_back(std::move(row));
      });

  const fl::RunResult result = experiment.run->run();

  metrics::Table rounds({"round", "train_loss", "test_acc", "uplink KB",
                         "downlink KB", "upload ms", "broadcast ms"});
  for (const auto& r : result.rounds)
    rounds.add_row(
        {std::to_string(r.round), metrics::Table::fmt(r.train_loss, 3),
         r.eval_accuracy ? metrics::Table::fmt(*r.eval_accuracy, 3) : "-",
         metrics::Table::fmt(double(r.uplink_bytes) / 1e3, 1),
         metrics::Table::fmt(double(r.downlink_bytes) / 1e3, 1),
         metrics::Table::fmt(r.upload_seconds * 1e3, 2),
         metrics::Table::fmt(r.broadcast_seconds * 1e3, 2)});
  rounds.print(std::cout);

  std::printf("\nPer-PS upload load |N_i| by round (sparse uploading; "
              "E|N_i| = K/P = %.1f):\n",
              double(fed.clients) / double(fed.servers));
  for (std::size_t t = 0; t < loads.size(); ++t) {
    std::printf("  round %zu:", t);
    for (const std::size_t n : loads[t]) std::printf(" %zu", n);
    std::printf("\n");
  }

  std::printf("\nByzantine PSs:");
  for (const auto& server : experiment.run->servers())
    if (server.is_byzantine())
      std::printf(" server#%zu(%s)", server.index(),
                  server.attack()->name().c_str());
  std::printf("\nTotal simulated communication time: %.2f s over %zu "
              "rounds\n",
              result.simulated_comm_seconds, result.rounds.size());
  std::printf("Final averaged test accuracy: %.1f%%\n",
              100.0 * *result.final_eval().eval_accuracy);

  // Per-class quality of the first client's model: under attacks the
  // damage is rarely uniform across classes.
  auto* first =
      dynamic_cast<fl::NnLearner*>(experiment.run->learners().front().get());
  const data::Dataset& test = experiment.data->test;
  std::vector<std::size_t> eval_indices(
      std::min<std::size_t>(test.size(), 200));
  for (std::size_t i = 0; i < eval_indices.size(); ++i) eval_indices[i] = i;
  const data::Batch batch = data::make_batch(test, eval_indices);
  const auto predictions = first->classifier().predict(batch.inputs);
  metrics::ConfusionMatrix confusion(test.num_classes);
  confusion.add_batch(predictions, batch.labels);
  std::printf("\n");
  confusion.print(std::cout);
  return 0;
}
