// Custom-data workflow: the path a downstream user takes to run Fed-MS on
// their own tabular dataset instead of the built-in synthetic generators.
//
//   1. load a CSV dataset (here we synthesize one and write it to disk
//      first, so the example is self-contained);
//   2. split train/test and Dirichlet-partition across clients;
//   3. build learners manually (custom model width and LR schedule);
//   4. run Fed-MS under an active attack;
//   5. checkpoint the final global model and export telemetry as JSON.

#include <cstdio>

#include "data/csv.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedms.h"
#include "fl/nn_learner.h"
#include "metrics/json.h"
#include "nn/checkpoint.h"
#include "nn/model_zoo.h"

int main() {
  using namespace fedms;
  const std::string csv_path = "/tmp/fedms_custom_data.csv";
  const std::string ckpt_path = "/tmp/fedms_custom_model.ckpt";
  const std::string json_path = "/tmp/fedms_custom_run.json";

  // --- 1. a "user dataset" on disk ---
  {
    data::GaussianClassesConfig config;
    config.samples = 1200;
    config.dimension = 10;
    config.num_classes = 5;
    config.class_separation = 3.5f;
    core::Rng rng(2024);
    data::save_csv(csv_path, data::make_gaussian_classes(config, rng));
  }
  const data::Dataset full = data::load_csv(csv_path);
  std::printf("loaded %zu samples x %zu features, %zu classes from %s\n",
              full.size(), full.sample_numel(), full.num_classes,
              csv_path.c_str());

  // --- 2. split + partition ---
  fl::FedMsConfig fed;
  fed.clients = 16;
  fed.servers = 6;
  fed.byzantine = 1;
  fed.attack = "random";
  fed.client_filter = "trmean:0.17";  // B/P = 1/6
  fed.rounds = 15;
  fed.eval_every = 5;
  fed.seed = 99;

  const core::SeedSequence seeds(fed.seed);
  core::Rng split_rng = seeds.make_rng("split");
  const data::TrainTestSplit split =
      data::split_train_test(full, 0.25, split_rng);
  core::Rng part_rng = seeds.make_rng("partition");
  const data::PartitionIndices partition =
      data::dirichlet_partition(split.train, fed.clients, /*alpha=*/2.0,
                                part_rng, /*min_samples_per_client=*/8);

  // --- 3. learners with a decaying LR schedule ---
  fl::NnLearnerOptions options;
  options.batch_size = 16;
  options.lr_schedule = "invdecay:3:10";  // eta_t = 3/(10+t)
  options.eval_sample_cap = 300;
  const std::uint64_t model_seed = seeds.derive("model");
  std::vector<fl::LearnerPtr> learners;
  for (std::size_t k = 0; k < fed.clients; ++k) {
    core::Rng model_rng(model_seed);  // identical w0 for every client
    learners.push_back(std::make_unique<fl::NnLearner>(
        split.train, partition[k], split.test,
        nn::make_mlp(full.sample_numel(), {16}, full.num_classes,
                     model_rng),
        options, seeds.make_rng("sampler", k)));
  }

  // --- 4. run ---
  fl::FedMsRun run(fed, std::move(learners));
  const fl::RunResult result = run.run();
  for (const auto& record : result.rounds)
    if (record.eval_accuracy)
      std::printf("round %2llu  accuracy %.3f  train loss %.3f\n",
                  static_cast<unsigned long long>(record.round),
                  *record.eval_accuracy, record.train_loss);

  // --- 5. checkpoint + telemetry export ---
  auto* first = dynamic_cast<fl::NnLearner*>(run.learners().front().get());
  nn::save_checkpoint(ckpt_path, first->classifier().net());
  metrics::save_run_json(json_path, fed, result);
  std::printf(
      "\nfinal accuracy %.1f%% under a Byzantine PS (Random attack)\n"
      "model checkpoint: %s\nrun telemetry:    %s\n",
      100.0 * *result.final_eval().eval_accuracy, ckpt_path.c_str(),
      json_path.c_str());
  return 0;
}
